// The event-driven (scheduled) propagation engine: equivalence with the
// legacy FIFO sweep, the watch/watermark discipline's bookkeeping
// (touchedQuantities, saturatedDiscards), budget abort, and shape checking.
// The schedule itself is compiled by flames::analyze::computeSchedule — the
// static pass tested in tests/analyze/test_schedule.cpp; here we care about
// the runtime consuming it.
#include "constraints/propagator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analyze/schedule.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"

namespace flames::constraints {
namespace {

using atms::Environment;
using fuzzy::FuzzyInterval;

circuit::Netlist divider() {
  circuit::Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

/// Sorted (size, degree) view of the nogood database, insensitive to the
/// recording order (the two engines fire constraints in different orders).
std::vector<std::pair<std::size_t, double>> canonicalNogoods(
    const Propagator& p) {
  std::vector<std::pair<std::size_t, double>> out;
  for (const auto& n : p.nogoods().all()) {
    out.emplace_back(n.env.size(), n.degree);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void expectSameValues(const Model& m, const Propagator& legacy,
                      const Propagator& scheduled) {
  for (QuantityId q = 0; q < m.quantityCount(); ++q) {
    const auto& a = legacy.values(q);
    const auto& b = scheduled.values(q);
    ASSERT_EQ(a.size(), b.size()) << m.quantityInfo(q).name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].value.coreMidpoint(), b[i].value.coreMidpoint(), 1e-9)
          << m.quantityInfo(q).name << " entry " << i;
      EXPECT_EQ(a[i].env, b[i].env) << m.quantityInfo(q).name;
    }
  }
}

TEST(ScheduledPropagator, MatchesLegacyOnAChain) {
  // x --(+5)--> y --(*2)--> z: pure forward flow, no coincidences.
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  const auto z = m.addQuantity("z");
  m.addConstraint(std::make_unique<DiffConstraint>(
      "diff", y, x, FuzzyInterval::crisp(5.0), Environment{}));
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "scale", y, z, FuzzyInterval::crisp(2.0), Environment{}));
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(m);

  Propagator legacy(m);
  legacy.addMeasurement(x, FuzzyInterval::crisp(1.0));
  legacy.run();

  PropagatorOptions opts;
  opts.schedule = &s.plan;
  Propagator scheduled(m, opts);
  scheduled.addMeasurement(x, FuzzyInterval::crisp(1.0));
  scheduled.run();

  EXPECT_TRUE(scheduled.completed());
  expectSameValues(m, legacy, scheduled);
  EXPECT_EQ(canonicalNogoods(legacy), canonicalNogoods(scheduled));
}

TEST(ScheduledPropagator, MatchesLegacyOnAFaultedDivider) {
  // The full diagnostic model (predictions + KCL/Ohm constraints) with a
  // measurement far from nominal: both engines must record the same
  // conflicts and keep the same entries.
  const auto built = buildDiagnosticModel(divider());
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(built.model);
  const QuantityId mid = built.model.quantity("V(mid)");

  Propagator legacy(built.model);
  legacy.addMeasurement(mid, FuzzyInterval::about(9.0, 0.05));
  legacy.run();

  PropagatorOptions opts;
  opts.schedule = &s.plan;
  Propagator scheduled(built.model, opts);
  scheduled.addMeasurement(mid, FuzzyInterval::about(9.0, 0.05));
  scheduled.run();

  EXPECT_TRUE(legacy.completed());
  EXPECT_TRUE(scheduled.completed());
  ASSERT_FALSE(legacy.nogoods().all().empty());
  expectSameValues(built.model, legacy, scheduled);
  EXPECT_EQ(canonicalNogoods(legacy), canonicalNogoods(scheduled));
  EXPECT_EQ(legacy.coincidences().size(), scheduled.coincidences().size());
}

TEST(ScheduledPropagator, StepsCountKeptEntries) {
  // In schedule mode steps() counts kept entries — the unit the static
  // cone bound certifies. Every quantity that holds entries contributes.
  const auto built = buildDiagnosticModel(divider());
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(built.model);
  PropagatorOptions opts;
  opts.schedule = &s.plan;
  Propagator p(built.model, opts);
  p.addMeasurement(built.model.quantity("V(mid)"),
                   FuzzyInterval::about(5.0, 0.05));
  p.run();
  std::size_t kept = 0;
  for (QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    kept += p.values(q).size();
  }
  EXPECT_EQ(p.steps(), kept);
}

TEST(ScheduledPropagator, TouchedQuantitiesTrackTheDelta) {
  const auto built = buildDiagnosticModel(divider());
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(built.model);
  PropagatorOptions opts;
  opts.schedule = &s.plan;
  Propagator p(built.model, opts);
  const QuantityId mid = built.model.quantity("V(mid)");
  p.addMeasurement(mid, FuzzyInterval::about(5.0, 0.05));
  p.run();
  EXPECT_FALSE(p.touchedQuantities().empty());

  p.markClean();
  EXPECT_TRUE(p.touchedQuantities().empty());

  // A second, consistent measurement touches at least the measured quantity
  // itself, and everything touched lies inside its static impact cone.
  p.addMeasurement(mid, FuzzyInterval::about(5.01, 0.05));
  p.run();
  const std::vector<QuantityId> touched = p.touchedQuantities();
  ASSERT_FALSE(touched.empty());
  EXPECT_NE(std::find(touched.begin(), touched.end(), mid), touched.end());
  const PropagationSchedule::ImpactCone& cone = s.plan.cones[mid];
  for (const QuantityId q : touched) {
    EXPECT_TRUE(std::binary_search(cone.quantities.begin(),
                                   cone.quantities.end(), q))
        << built.model.quantityInfo(q).name << " outside the cone";
  }
}

TEST(ScheduledPropagator, SaturatedDiscardsWitnessCapPressure) {
  const auto built = buildDiagnosticModel(divider());
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(built.model);

  // Ample cap: every informative derivation is kept — the confluence
  // witness the incremental session relies on.
  PropagatorOptions ample;
  ample.schedule = &s.plan;
  Propagator p(built.model, ample);
  p.addMeasurement(built.model.quantity("V(mid)"),
                   FuzzyInterval::about(5.0, 0.05));
  p.run();
  EXPECT_EQ(p.saturatedDiscards(), 0u);

  // Cap of one entry per quantity: the predictions alone fill it, so the
  // measurement-driven derivations must be discarded — and counted.
  PropagatorOptions tight;
  tight.schedule = &s.plan;
  tight.maxEntriesPerQuantity = 1;
  Propagator q(built.model, tight);
  q.addMeasurement(built.model.quantity("V(mid)"),
                   FuzzyInterval::about(5.0, 0.05));
  q.run();
  EXPECT_GT(q.saturatedDiscards(), 0u);
}

TEST(ScheduledPropagator, KeptEntryBudgetAbortsLikeTheLegacyStepBudget) {
  const auto built = buildDiagnosticModel(divider());
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(built.model);
  PropagatorOptions opts;
  opts.schedule = &s.plan;
  opts.maxSteps = 2;
  Propagator p(built.model, opts);
  p.addMeasurement(built.model.quantity("V(mid)"),
                   FuzzyInterval::about(5.0, 0.05));
  p.run();
  EXPECT_FALSE(p.completed());
}

TEST(ScheduledPropagator, RejectsAScheduleOfTheWrongShape) {
  const auto built = buildDiagnosticModel(divider());
  const analyze::ScheduleAnalysis s = analyze::computeSchedule(built.model);

  Model other;
  other.addQuantity("lonely");
  PropagatorOptions opts;
  opts.schedule = &s.plan;
  EXPECT_THROW(Propagator(other, opts), std::invalid_argument);
}

}  // namespace
}  // namespace flames::constraints
