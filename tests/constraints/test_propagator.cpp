#include "constraints/propagator.h"

#include <gtest/gtest.h>

#include <memory>

namespace flames::constraints {
namespace {

using atms::Environment;
using fuzzy::FuzzyInterval;

TEST(Model, QuantityAndAssumptionRegistry) {
  Model m;
  const QuantityId v = m.addQuantity("V(a)", QuantityKind::kVoltage);
  EXPECT_EQ(m.addQuantity("V(a)"), v);  // idempotent
  EXPECT_EQ(m.quantity("V(a)"), v);
  EXPECT_THROW((void)m.quantity("missing"), std::out_of_range);
  const auto a = m.addAssumption("R1");
  EXPECT_EQ(m.addAssumption("R1"), a);
  EXPECT_EQ(m.assumptionName(a), "R1");
  EXPECT_EQ(m.describe(Environment::of({a})), "{R1}");
}

TEST(Model, ConstraintValidation) {
  Model m;
  EXPECT_THROW(m.addConstraint(nullptr), std::invalid_argument);
  m.addQuantity("x");
  EXPECT_THROW(m.addConstraint(std::make_unique<DiffConstraint>(
                   "bad", 0, 7, FuzzyInterval::crisp(0.0), Environment{})),
               std::out_of_range);
}

TEST(Propagator, ForwardChainDerivation) {
  // x --(+5)--> y --(*2)--> z.
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  const auto z = m.addQuantity("z");
  m.addConstraint(std::make_unique<DiffConstraint>(
      "diff", y, x, FuzzyInterval::crisp(5.0), Environment{}));
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "scale", y, z, FuzzyInterval::crisp(2.0), Environment{}));

  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::crisp(1.0));
  p.run();
  EXPECT_TRUE(p.completed());
  ASSERT_FALSE(p.values(y).empty());
  EXPECT_NEAR(p.values(y).front().value.coreMidpoint(), 6.0, 1e-9);
  ASSERT_FALSE(p.values(z).empty());
  EXPECT_NEAR(p.values(z).front().value.coreMidpoint(), 12.0, 1e-9);
  EXPECT_TRUE(p.values(z).front().fromMeasurement);
  EXPECT_EQ(p.values(z).front().source, ValueSource::kDerived);
}

TEST(Propagator, BackwardDerivation) {
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "scale", x, y, FuzzyInterval::crisp(4.0), Environment{}));
  Propagator p(m);
  p.addMeasurement(y, FuzzyInterval::crisp(8.0));
  p.run();
  ASSERT_FALSE(p.values(x).empty());
  EXPECT_NEAR(p.values(x).front().value.coreMidpoint(), 2.0, 1e-9);
}

TEST(Propagator, EnvironmentsUnionThroughConstraints) {
  Model m;
  const auto a1 = m.addAssumption("C1");
  const auto a2 = m.addAssumption("C2");
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  const auto z = m.addQuantity("z");
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "s1", x, y, FuzzyInterval::crisp(2.0), Environment::of({a1})));
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "s2", y, z, FuzzyInterval::crisp(3.0), Environment::of({a2})));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::crisp(1.0));
  p.run();
  ASSERT_FALSE(p.values(z).empty());
  EXPECT_EQ(p.values(z).front().env, Environment::of({a1, a2}));
}

TEST(Propagator, CorroborationRecordsNoNogood) {
  Model m;
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::about(5.0, 1.0), Environment{});
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::about(5.0, 0.1));
  p.run();
  EXPECT_EQ(p.nogoods().size(), 0u);
  ASSERT_FALSE(p.coincidences().empty());
  EXPECT_NEAR(p.coincidences().front().consistency.dc, 1.0, 1e-9);
}

TEST(Propagator, HardConflictRecordsDegreeOneNogood) {
  Model m;
  const auto a = m.addAssumption("C");
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::about(5.0, 0.2), Environment::of({a}));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::about(9.0, 0.2));
  p.run();
  ASSERT_EQ(p.nogoods().size(), 1u);
  EXPECT_DOUBLE_EQ(p.nogoods().all().front().degree, 1.0);
  EXPECT_EQ(p.nogoods().all().front().env, Environment::of({a}));
}

TEST(Propagator, PartialConflictDegreeIsOneMinusDc) {
  Model m;
  const auto a = m.addAssumption("C");
  const auto x = m.addQuantity("x");
  // Nominal rect [0,2]; measured rect [1,3]: Dc = 0.5 => nogood degree 0.5.
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 2.0),
                  Environment::of({a}));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::crispInterval(1.0, 3.0));
  p.run();
  ASSERT_EQ(p.nogoods().size(), 1u);
  EXPECT_NEAR(p.nogoods().all().front().degree, 0.5, 1e-9);
}

TEST(Propagator, CrispPolicyIgnoresPartialOverlap) {
  Model m;
  const auto a = m.addAssumption("C");
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 2.0),
                  Environment::of({a}));
  PropagatorOptions opts;
  opts.policy = ConflictPolicy::kCrisp;
  opts.crispifyValues = true;
  Propagator p(m, opts);
  p.addMeasurement(x, FuzzyInterval::crispInterval(1.0, 3.0));
  p.run();
  EXPECT_EQ(p.nogoods().size(), 0u);  // overlap => crisp engine sees no fault
}

TEST(Propagator, CrispPolicyDetectsDisjoint) {
  Model m;
  const auto a = m.addAssumption("C");
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 2.0),
                  Environment::of({a}));
  PropagatorOptions opts;
  opts.policy = ConflictPolicy::kCrisp;
  opts.crispifyValues = true;
  Propagator p(m, opts);
  p.addMeasurement(x, FuzzyInterval::crispInterval(5.0, 6.0));
  p.run();
  ASSERT_EQ(p.nogoods().size(), 1u);
  EXPECT_DOUBLE_EQ(p.nogoods().all().front().degree, 1.0);
}

TEST(Propagator, PaperFig5FullScenario) {
  // Quantities in V / kOhm / mA; the paper's prediction table is entered
  // verbatim: Id <= [-1,100,0,10] uA under {d1}, propagated by Kirchhoff to
  // Ir1 under {d1,r1} and Ir2 under {d1,r2}. Measurements Vr1 = 1.05 V and
  // Vr2 = 2 V then yield nogoods {d1,r1} with degree 0.5 and {d1,r2} with
  // degree 1 — the paper's §6.3 numbers.
  Model m;
  const auto r1 = m.addAssumption("r1");
  const auto r2 = m.addAssumption("r2");
  const auto d1 = m.addAssumption("d1");
  const auto vr1 = m.addQuantity("Vr1", QuantityKind::kVoltage);
  const auto vr2 = m.addQuantity("Vr2", QuantityKind::kVoltage);
  const auto gnd = m.addQuantity("V0", QuantityKind::kVoltage);
  const auto ir1 = m.addQuantity("Ir1", QuantityKind::kCurrent);
  const auto ir2 = m.addQuantity("Ir2", QuantityKind::kCurrent);

  m.addPrediction(gnd, FuzzyInterval::crisp(0.0), Environment{});
  const FuzzyInterval rating(-0.001, 0.100, 0.0, 0.010);
  m.addPrediction(ir1, rating, Environment::of({d1, r1}));
  m.addPrediction(ir2, rating, Environment::of({d1, r2}));

  m.addConstraint(std::make_unique<OhmConstraint>(
      "ohm(r1)", vr1, gnd, ir1, FuzzyInterval::crisp(10.0),
      Environment::of({r1})));
  m.addConstraint(std::make_unique<OhmConstraint>(
      "ohm(r2)", vr2, gnd, ir2, FuzzyInterval::crisp(10.0),
      Environment::of({r2})));

  Propagator p(m);
  p.addMeasurement(vr1, FuzzyInterval::crisp(1.05));
  p.addMeasurement(vr2, FuzzyInterval::crisp(2.0));
  p.run();
  EXPECT_TRUE(p.completed());

  const auto minimal = p.nogoods().minimalNogoods(0.0);
  ASSERT_EQ(minimal.size(), 2u);
  // Sorted by degree descending: {d1,r2} at 1.0 first.
  EXPECT_EQ(minimal[0].env, Environment::of({d1, r2}));
  EXPECT_NEAR(minimal[0].degree, 1.0, 1e-9);
  EXPECT_EQ(minimal[1].env, Environment::of({d1, r1}));
  EXPECT_NEAR(minimal[1].degree, 0.5, 1e-9);
}

TEST(Propagator, SubsumedDerivedEntriesDropped) {
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "s", x, y, FuzzyInterval::crisp(2.0), Environment{}));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::crisp(1.0));
  p.run();
  const std::size_t after = p.values(y).size();
  // Adding the same measurement again must not duplicate values.
  p.addMeasurement(x, FuzzyInterval::crisp(1.0));
  p.run();
  EXPECT_EQ(p.values(y).size(), after);
}

TEST(Propagator, MeasurementTrustEnvironmentPropagates) {
  Model m;
  const auto meas = m.addAssumption("meter");
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "s", x, y, FuzzyInterval::crisp(2.0), Environment{}));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::crisp(1.0), Environment::of({meas}));
  p.run();
  ASSERT_FALSE(p.values(y).empty());
  EXPECT_TRUE(p.values(y).front().env.contains(meas));
}

TEST(Propagator, WorstCoincidencePicksLowestDc) {
  Model m;
  const auto a = m.addAssumption("C");
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 2.0),
                  Environment::of({a}));
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 8.0),
                  Environment::of({a}));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::crispInterval(1.0, 3.0));
  p.run();
  const auto worst = p.worstCoincidence(x);
  ASSERT_TRUE(worst.has_value());
  EXPECT_NEAR(worst->consistency.dc, 0.5, 1e-9);
}

TEST(Propagator, DepthLimitStopsRunawayChains) {
  // A long chain x0 -> x1 -> ... -> x20; depth cap of 5 stops derivation.
  Model m;
  std::vector<QuantityId> q;
  for (int i = 0; i <= 20; ++i) {
    q.push_back(m.addQuantity("x" + std::to_string(i)));
  }
  for (int i = 0; i < 20; ++i) {
    m.addConstraint(std::make_unique<DiffConstraint>(
        "d" + std::to_string(i), q[static_cast<std::size_t>(i) + 1],
        q[static_cast<std::size_t>(i)], FuzzyInterval::crisp(1.0),
        Environment{}));
  }
  PropagatorOptions opts;
  opts.maxDepth = 5;
  Propagator p(m, opts);
  p.addMeasurement(q[0], FuzzyInterval::crisp(0.0));
  p.run();
  EXPECT_TRUE(p.completed());
  EXPECT_FALSE(p.values(q[5]).empty());
  EXPECT_TRUE(p.values(q[10]).empty());
}

}  // namespace
}  // namespace flames::constraints
