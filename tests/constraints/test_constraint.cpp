#include "constraints/constraint.h"

#include <gtest/gtest.h>

namespace flames::constraints {
namespace {

using atms::Environment;
using fuzzy::FuzzyInterval;

TEST(SumConstraint, SolvesEachVariable) {
  // x + 2y - z = 4.
  SumConstraint c("sum", {0, 1, 2}, {1.0, 2.0, -1.0}, FuzzyInterval::crisp(4.0),
                  Environment{});
  std::vector<FuzzyInterval> in(3);
  in[1] = FuzzyInterval::crisp(1.0);
  in[2] = FuzzyInterval::crisp(2.0);
  auto x = c.solveFor(0, in);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(x->coreMidpoint(), 4.0, 1e-12);  // x = 4 - 2 + 2

  in[0] = FuzzyInterval::crisp(4.0);
  auto y = c.solveFor(1, in);
  ASSERT_TRUE(y.has_value());
  EXPECT_NEAR(y->coreMidpoint(), 1.0, 1e-12);

  auto z = c.solveFor(2, in);
  ASSERT_TRUE(z.has_value());
  EXPECT_NEAR(z->coreMidpoint(), 2.0, 1e-12);
}

TEST(SumConstraint, Validation) {
  EXPECT_THROW(SumConstraint("bad", {0, 1}, {1.0}, FuzzyInterval::crisp(0.0),
                             Environment{}),
               std::invalid_argument);
  EXPECT_THROW(SumConstraint("bad", {0}, {0.0}, FuzzyInterval::crisp(0.0),
                             Environment{}),
               std::invalid_argument);
}

TEST(SumConstraint, FuzzySpreadsPropagate) {
  SumConstraint c("kcl", {0, 1, 2}, {1.0, -1.0, -1.0},
                  FuzzyInterval::crisp(0.0), Environment{});
  std::vector<FuzzyInterval> in(3);
  in[1] = FuzzyInterval::about(1.0, 0.1);
  in[2] = FuzzyInterval::about(2.0, 0.2);
  const auto total = c.solveFor(0, in);
  ASSERT_TRUE(total.has_value());
  EXPECT_NEAR(total->coreMidpoint(), 3.0, 1e-12);
  EXPECT_NEAR(total->alpha(), 0.3, 1e-12);
}

TEST(DiffConstraint, BothDirections) {
  DiffConstraint c("emf", 0, 1, FuzzyInterval::about(5.0, 0.1), Environment{});
  std::vector<FuzzyInterval> in(2);
  in[1] = FuzzyInterval::crisp(1.0);
  auto a = c.solveFor(0, in);
  ASSERT_TRUE(a.has_value());
  EXPECT_NEAR(a->coreMidpoint(), 6.0, 1e-12);
  in[0] = FuzzyInterval::crisp(6.0);
  auto b = c.solveFor(1, in);
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->coreMidpoint(), 1.0, 1e-12);
  EXPECT_FALSE(c.solveFor(2, in).has_value());
}

TEST(ScaleConstraint, ForwardAndInverse) {
  ScaleConstraint c("gain", 0, 1, FuzzyInterval::about(2.0, 0.05),
                    Environment{});
  std::vector<FuzzyInterval> in(2);
  in[0] = FuzzyInterval::about(3.0, 0.05);
  const auto out = c.solveFor(1, in);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(out->coreMidpoint(), 6.0, 1e-12);
  in[1] = FuzzyInterval::crisp(6.0);
  const auto back = c.solveFor(0, in);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->coreMidpoint(), 3.0, 1e-9);
}

TEST(ScaleConstraint, RejectsZeroStraddlingFactor) {
  EXPECT_THROW(ScaleConstraint("bad", 0, 1,
                               FuzzyInterval::crispInterval(-1.0, 1.0),
                               Environment{}),
               std::invalid_argument);
}

TEST(ScaleConstraint, NegativeFactorWorks) {
  ScaleConstraint c("inv", 0, 1, FuzzyInterval::crisp(-2.0), Environment{});
  std::vector<FuzzyInterval> in(2);
  in[0] = FuzzyInterval::crisp(3.0);
  EXPECT_NEAR(c.solveFor(1, in)->coreMidpoint(), -6.0, 1e-12);
}

TEST(OhmConstraint, AllThreeDirections) {
  // V, kOhm, mA units: Va - Vb = I * R.
  OhmConstraint c("ohm", 0, 1, 2, FuzzyInterval::about(10.0, 0.0),
                  Environment{});
  std::vector<FuzzyInterval> in(3);
  in[0] = FuzzyInterval::crisp(1.05);
  in[1] = FuzzyInterval::crisp(0.0);
  const auto i = c.solveFor(2, in);
  ASSERT_TRUE(i.has_value());
  EXPECT_NEAR(i->coreMidpoint(), 0.105, 1e-9);  // the paper's 105 uA

  in[2] = FuzzyInterval::crisp(0.105);
  const auto va = c.solveFor(0, in);
  EXPECT_NEAR(va->coreMidpoint(), 1.05, 1e-9);
  const auto vb = c.solveFor(1, in);
  EXPECT_NEAR(vb->coreMidpoint(), 0.0, 1e-9);
}

TEST(OhmConstraint, RejectsNonPositiveResistance) {
  EXPECT_THROW(OhmConstraint("bad", 0, 1, 2,
                             FuzzyInterval::crispInterval(-1.0, 2.0),
                             Environment{}),
               std::invalid_argument);
}

TEST(OhmConstraint, ToleranceWidensCurrent) {
  OhmConstraint c("ohm", 0, 1, 2, FuzzyInterval::withTolerance(10.0, 0.05),
                  Environment{});
  std::vector<FuzzyInterval> in(3);
  in[0] = FuzzyInterval::crisp(10.0);
  in[1] = FuzzyInterval::crisp(0.0);
  const auto i = c.solveFor(2, in);
  ASSERT_TRUE(i.has_value());
  // I in [10/10.5, 10/9.5] at the support.
  EXPECT_NEAR(i->support().lo, 10.0 / 10.5, 1e-9);
  EXPECT_NEAR(i->support().hi, 10.0 / 9.5, 1e-9);
}

TEST(Constraint, CarriesValidityAndDegree) {
  DiffConstraint c("emf", 0, 1, FuzzyInterval::crisp(5.0),
                   atms::Environment::of({3}), 0.8);
  EXPECT_TRUE(c.validity().contains(3));
  EXPECT_DOUBLE_EQ(c.degree(), 0.8);
  EXPECT_EQ(c.name(), "emf");
}

}  // namespace
}  // namespace flames::constraints
