// Scenario sampling, bench synthesis and the .scenario wire format.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "circuit/mna.h"
#include "scenario/scenario.h"
#include "workload/rng.h"

namespace flames::scenario {
namespace {

TEST(Scenario, SamplingIsDeterministic) {
  const Scenario a = sampleScenario(7);
  const Scenario b = sampleScenario(7);
  EXPECT_EQ(a, b);
}

TEST(Scenario, DistinctSeedsExploreTheSpace) {
  int distinct = 0;
  const Scenario base = sampleScenario(workload::deriveSeed(3, 0));
  for (std::uint64_t i = 1; i < 12; ++i) {
    const Scenario s = sampleScenario(workload::deriveSeed(3, i));
    if (s.topology != base.topology || !(s.fault.component ==
                                         base.fault.component)) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 8) << "sampler collapsed onto one scenario shape";
}

TEST(Scenario, SynthesisIsDeterministicAndObservable) {
  const Scenario s = sampleScenario(7);
  const auto r1 = synthesize(s);
  const auto r2 = synthesize(s);
  ASSERT_EQ(r1.size(), s.probes.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].node, r2[i].node);
    EXPECT_DOUBLE_EQ(r1[i].volts, r2[i].volts);
  }

  // The observability gate: some probe must move by >= 10% of max(|vn|, 1)
  // relative to the nominal circuit, else the sampler must have resampled.
  const auto nominalOp = circuit::DcSolver(buildNetlist(s)).solve();
  ASSERT_TRUE(nominalOp.converged);
  double worst = 0.0;
  const auto net = buildNetlist(s);
  for (const auto& r : r1) {
    const double vn = nominalOp.v(net.findNode(r.node));
    worst = std::max(worst,
                     std::abs(r.volts - vn) / std::max(std::abs(vn), 1.0));
  }
  EXPECT_GE(worst, 0.10);
}

TEST(Scenario, BuildNetlistRejectsMissingFaultTarget) {
  Scenario s = sampleScenario(7);
  s.fault.component = "R_nonexistent";
  EXPECT_THROW((void)buildNetlist(s), std::invalid_argument);
}

TEST(Scenario, DroppedComponentsAreRemoved) {
  Scenario s = sampleScenario(7);
  const auto full = buildNetlist(s);
  // Drop some non-culprit, non-source component.
  std::string victim;
  for (const auto& c : full.components()) {
    if (c.kind != circuit::ComponentKind::kVSource &&
        c.name != s.fault.component) {
      victim = c.name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  s.dropped.push_back(victim);
  const auto reduced = buildNetlist(s);
  EXPECT_EQ(reduced.components().size(), full.components().size() - 1);
  for (const auto& c : reduced.components()) EXPECT_NE(c.name, victim);
}

TEST(Scenario, SerializationRoundTripsExactly) {
  for (std::uint32_t seed : {1u, 7u, 99u, 123456u}) {
    const Scenario s = sampleScenario(seed);
    EXPECT_EQ(parseScenario(serialize(s)), s) << "seed " << seed;
  }
}

TEST(Scenario, SerializationSurvivesCommentsAndBlankLines) {
  const Scenario s = sampleScenario(7);
  const std::string decorated =
      "# hand-annotated repro\n\n" + serialize(s) + "\n# trailing note\n";
  EXPECT_EQ(parseScenario(decorated), s);
}

TEST(Scenario, ParserReportsOffendingLine) {
  try {
    (void)parseScenario("seed 1\nfrobnicate yes\n");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, FileRoundTrip) {
  const Scenario s = sampleScenario(7);
  const std::string path = ::testing::TempDir() + "roundtrip.scenario";
  writeScenarioFile(path, s);
  EXPECT_EQ(loadScenarioFile(path), s);
  std::remove(path.c_str());
  EXPECT_THROW((void)loadScenarioFile(path), std::runtime_error);
}

}  // namespace
}  // namespace flames::scenario
