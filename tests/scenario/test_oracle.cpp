// Oracle tests: invariant checking on synthetic reports (each Ix trips on a
// hand-built violation) and end-to-end culprit recovery through both the
// engine and service paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "scenario/oracle.h"
#include "service/service.h"

namespace flames::scenario {
namespace {

using diagnosis::DiagnosisReport;
using diagnosis::MeasurementSummary;
using diagnosis::RankedCandidate;
using diagnosis::RankedNogood;

bool hasViolation(const std::vector<std::string>& vs, const std::string& tag) {
  return std::any_of(vs.begin(), vs.end(), [&](const std::string& v) {
    return v.rfind(tag, 0) == 0;
  });
}

DiagnosisReport cleanReport() {
  DiagnosisReport r;
  r.propagationCompleted = true;
  MeasurementSummary m;
  m.quantity = "V1";
  m.dc = 0.4;
  m.signedDc = -0.4;
  m.direction = -1;
  r.measurements.push_back(m);
  r.nogoods.push_back({{"R1", "R2"}, 0.6, ""});
  RankedCandidate c;
  c.components = {"R1"};
  c.suspicion = 0.6;
  c.plausibility = 0.9;
  r.candidates.push_back(c);
  r.suspicion["R1"] = 0.6;
  return r;
}

TEST(OracleInvariants, CleanReportHasNoViolations) {
  EXPECT_TRUE(checkReportInvariants(cleanReport()).empty());
}

TEST(OracleInvariants, I1IncompletePropagation) {
  auto r = cleanReport();
  r.propagationCompleted = false;
  EXPECT_TRUE(hasViolation(checkReportInvariants(r), "I1:"));
}

TEST(OracleInvariants, I2DcOutOfRangeAndSignMismatch) {
  auto r = cleanReport();
  r.measurements[0].dc = 1.5;
  r.measurements[0].signedDc = 1.5;
  EXPECT_TRUE(hasViolation(checkReportInvariants(r), "I2:"));

  auto r2 = cleanReport();
  r2.measurements[0].signedDc = +0.4;  // direction says below nominal
  EXPECT_TRUE(hasViolation(checkReportInvariants(r2), "I2:"));

  auto r3 = cleanReport();
  r3.measurements[0].signedDc = -0.2;  // |signedDc| != dc
  EXPECT_TRUE(hasViolation(checkReportInvariants(r3), "I2:"));
}

TEST(OracleInvariants, I3DegreeRangeAndMinimality) {
  auto r = cleanReport();
  r.nogoods[0].degree = 0.0;
  EXPECT_TRUE(hasViolation(checkReportInvariants(r), "I3:"));

  auto r2 = cleanReport();
  // {R1} strictly inside {R1,R2}: the λ-cut subsumption contract is broken.
  r2.nogoods.push_back({{"R1"}, 0.5, ""});
  EXPECT_TRUE(hasViolation(checkReportInvariants(r2), "I3:"));
}

TEST(OracleInvariants, I4CandidateStructure) {
  auto r = cleanReport();
  r.candidates[0].suspicion = -0.2;
  EXPECT_TRUE(hasViolation(checkReportInvariants(r), "I4:"));

  auto r2 = cleanReport();
  r2.candidates[0].components = {"R1", "R1"};
  EXPECT_TRUE(hasViolation(checkReportInvariants(r2), "I4:"));

  auto r3 = cleanReport();
  r3.candidates.push_back(r3.candidates[0]);  // exact duplicate set
  EXPECT_TRUE(hasViolation(checkReportInvariants(r3), "I4:"));
}

TEST(OracleInvariants, I5UncoveredNogood) {
  auto r = cleanReport();
  r.nogoods.push_back({{"R9"}, 0.4, ""});
  EXPECT_TRUE(hasViolation(checkReportInvariants(r), "I5:"));
}

TEST(OracleInvariants, I6SuspicionRange) {
  auto r = cleanReport();
  r.suspicion["R1"] = 2.0;
  EXPECT_TRUE(hasViolation(checkReportInvariants(r), "I6:"));
}

TEST(Oracle, RecoversInjectedFaultThroughEngine) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    const Scenario s = sampleScenario(seed);
    const OracleResult r = runOracle(s);
    EXPECT_TRUE(r.passed()) << describe(s) << (r.violations.empty()
                                                   ? ""
                                                   : "\n" + r.violations[0]);
    EXPECT_TRUE(r.faultDetected) << describe(s);
    EXPECT_GE(r.culpritRank, 1) << describe(s);
  }
}

TEST(Oracle, ServicePathAgreesWithEngine) {
  const Scenario s = sampleScenario(7);
  const OracleResult viaEngine = runOracle(s);

  OracleOptions opts;
  opts.via = OracleVia::kService;
  service::ServiceOptions sopts;
  sopts.workers = 1;
  service::DiagnosisService svc(sopts);
  const OracleResult viaService = runOracle(s, opts, &svc);

  EXPECT_TRUE(viaService.passed())
      << (viaService.violations.empty() ? "" : viaService.violations[0]);
  EXPECT_EQ(viaEngine.culpritRank, viaService.culpritRank);
  EXPECT_EQ(viaEngine.report.nogoods.size(), viaService.report.nogoods.size());
  EXPECT_EQ(viaEngine.report.candidates.size(),
            viaService.report.candidates.size());
}

TEST(Oracle, RequireRankTightensTheCheck) {
  const Scenario s = sampleScenario(1);
  OracleOptions strict;
  strict.requireRankAtMost = 1;
  const OracleResult r = runOracle(s, strict);
  // Seed 1 recovers its culprit at rank 1 (pinned by the harness smoke run),
  // so even the strict oracle passes; rank 0 is rejected at option level by
  // construction — a failing strict run is exercised on the committed repro
  // in test_shrink.cpp.
  EXPECT_TRUE(r.passed());
  EXPECT_EQ(r.culpritRank, 1);
}

TEST(Oracle, DerivesTheEntryCapAndChecksAnalysisSoundness) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    const Scenario s = sampleScenario(seed);
    const OracleResult r = runOracle(s);
    ASSERT_TRUE(r.analysis.has_value()) << describe(s);
    // The applied cap is the analysis-derived one, clamped to [6, stock].
    EXPECT_GE(r.appliedEntryCap, 6u) << describe(s);
    EXPECT_LE(r.appliedEntryCap, 24u) << describe(s);
    EXPECT_EQ(r.appliedEntryCap,
              analyze::recommendedEntryCap(*r.analysis, 24))
        << describe(s);
    // I8/I9 ran as part of passed(): no envelope or step-bound violations.
    EXPECT_TRUE(r.passed()) << describe(s) << (r.violations.empty()
                                                   ? ""
                                                   : "\n" + r.violations[0]);
  }
}

TEST(Oracle, DerivedCapPreservesTheDiagnosis) {
  // Capping entries drops redundant re-derivations along longer paths, not
  // diagnostic outcomes: every seed must detect the fault and recover the
  // culprit at the same rank as a stock-cap run. On tree-shaped topologies
  // the derived cap equals the stock cap, so the reports match outright; on
  // meshes (seed 14's bridge) the stock run manufactures extra redundant
  // nogoods from the same conflicts, so only the outcome is compared.
  // Deeper meshes (e.g. seed 3) take tens of seconds at the stock cap —
  // which is the point of the derived cap, but too slow for a smoke test.
  for (std::uint32_t seed : {1u, 7u, 14u}) {
    const Scenario s = sampleScenario(seed);
    OracleOptions stock;
    stock.deriveEntryCap = false;
    const OracleResult derived = runOracle(s);
    const OracleResult full = runOracle(s, stock);
    EXPECT_TRUE(derived.passed()) << describe(s);
    EXPECT_EQ(derived.culpritRank, full.culpritRank) << describe(s);
    EXPECT_EQ(derived.faultDetected, full.faultDetected) << describe(s);
    if (derived.appliedEntryCap == 24u) {
      EXPECT_EQ(derived.report.nogoods.size(), full.report.nogoods.size())
          << describe(s);
      EXPECT_EQ(derived.report.candidates.size(),
                full.report.candidates.size())
          << describe(s);
    }
  }
}

TEST(Oracle, AnalysisCanBeTurnedOffEntirely) {
  Scenario s = sampleScenario(1);
  OracleOptions off;
  off.deriveEntryCap = false;
  off.checkAnalysis = false;
  const OracleResult r = runOracle(s, off);
  EXPECT_FALSE(r.analysis.has_value());
  EXPECT_EQ(r.appliedEntryCap, 24u);
  EXPECT_TRUE(r.passed());
}

TEST(Oracle, I10RecordsProvenanceAndReplaysTheCertificate) {
  const Scenario s = sampleScenario(1);
  const OracleResult r = runOracle(s);  // checkCertificates defaults on
  EXPECT_TRUE(r.passed()) << (r.violations.empty() ? ""
                                                   : r.violations.front());
  ASSERT_TRUE(r.report.provenance != nullptr)
      << "I10 must force provenance recording on";
  EXPECT_FALSE(r.report.provenance->log.entries().empty());
}

TEST(Oracle, I10CanBeTurnedOff) {
  const Scenario s = sampleScenario(1);
  OracleOptions off;
  off.checkCertificates = false;
  const OracleResult r = runOracle(s, off);
  EXPECT_TRUE(r.passed());
  EXPECT_TRUE(r.report.provenance == nullptr)
      << "without I10 the oracle must not pay for recording";
}

TEST(Oracle, UnbuildableScenarioIsAViolationNotACrash) {
  Scenario s = sampleScenario(1);
  s.fault.component = "R_missing";
  const OracleResult r = runOracle(s);
  EXPECT_FALSE(r.passed());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].rfind("bench:", 0), 0u) << r.violations[0];
}

}  // namespace
}  // namespace flames::scenario
