// Generator-level tests: every family must build deterministically, solve at
// DC, expose its advertised probes, and (the oracle's I7 gate, asserted here
// directly across a seed sweep) lint clean of errors.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "circuit/mna.h"
#include "lint/lint.h"
#include "scenario/topology.h"
#include "workload/rng.h"

namespace flames::scenario {
namespace {

TEST(Topology, SameSpecRebuildsIdenticalNetlist) {
  const TopologySpec spec{Family::kBridge, 3, 1, 42};
  const Topology a = buildTopology(spec);
  const Topology b = buildTopology(spec);
  ASSERT_EQ(a.net.components().size(), b.net.components().size());
  for (std::size_t i = 0; i < a.net.components().size(); ++i) {
    EXPECT_EQ(a.net.components()[i].name, b.net.components()[i].name);
    EXPECT_DOUBLE_EQ(a.net.components()[i].value, b.net.components()[i].value);
  }
  EXPECT_EQ(a.probes, b.probes);
}

TEST(Topology, ValueSeedPerturbsParameters) {
  const Topology a = buildTopology({Family::kLadder, 4, 1, 1});
  const Topology b = buildTopology({Family::kLadder, 4, 1, 2});
  ASSERT_EQ(a.net.components().size(), b.net.components().size());
  bool anyDiffers = false;
  for (std::size_t i = 0; i < a.net.components().size(); ++i) {
    if (a.net.components()[i].value != b.net.components()[i].value) {
      anyDiffers = true;
    }
  }
  EXPECT_TRUE(anyDiffers);
}

TEST(Topology, DegenerateSpecsThrow) {
  EXPECT_THROW(buildTopology({Family::kLadder, 0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(buildTopology({Family::kAmpChain, 3, 0, 1}),
               std::invalid_argument);
}

TEST(Topology, FamilyNamesRoundTrip) {
  for (const Family f : allFamilies()) {
    EXPECT_EQ(familyFromName(familyName(f)), f);
  }
  EXPECT_THROW((void)familyFromName("mesh"), std::invalid_argument);
}

TEST(Topology, SampleSpecStaysInBounds) {
  TopologyOptions opts;
  opts.minDepth = 2;
  opts.maxDepth = 4;
  opts.maxWidth = 2;
  std::mt19937 rng(11);
  std::set<Family> seen;
  for (int i = 0; i < 200; ++i) {
    const TopologySpec s = sampleSpec(rng, opts);
    EXPECT_GE(s.depth, 2u);
    EXPECT_LE(s.depth, 4u);
    EXPECT_GE(s.width, 1u);
    EXPECT_LE(s.width, 2u);
    seen.insert(s.family);
  }
  EXPECT_EQ(seen.size(), allFamilies().size()) << "sampler skipped a family";
}

class FamilySweep : public ::testing::TestWithParam<Family> {};

TEST_P(FamilySweep, EverySolvedDepthIsCleanAndObservable) {
  for (std::size_t depth = 2; depth <= 6; ++depth) {
    for (std::uint32_t vs = 1; vs <= 5; ++vs) {
      const TopologySpec spec{GetParam(), depth,
                              GetParam() == Family::kAmpChain ? 2u : 1u,
                              workload::deriveSeed(99, vs)};
      const Topology t = buildTopology(spec);
      EXPECT_FALSE(t.probes.empty());
      for (const std::string& p : t.probes) {
        EXPECT_NO_THROW((void)t.net.findNode(p)) << p;
      }
      const auto op = circuit::DcSolver(t.net).solve();
      EXPECT_TRUE(op.converged)
          << familyName(spec.family) << " d" << depth << " vs" << vs;

      // Satellite invariant: generated netlists never trip the linter
      // (I7 — the oracle enforces this per scenario; the sweep pins it
      // across the whole spec grid, independent of fault sampling).
      const lint::LintReport lr = lint::lintNetlist(t.net);
      EXPECT_TRUE(lr.ok()) << familyName(spec.family) << " d" << depth
                           << " vs" << vs << "\n"
                           << lint::renderLintReport(lr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::ValuesIn(allFamilies()),
                         [](const auto& paramInfo) {
                           return std::string(familyName(paramInfo.param));
                         });

}  // namespace
}  // namespace flames::scenario
