// Shrinker tests: the greedy fixpoint must reduce failing scenarios to a
// minimum, leave passing scenarios alone, and the committed repro produced
// by the deliberately-strict oracle must replay exactly as recorded.
#include <gtest/gtest.h>

#include "scenario/shrink.h"

#ifndef FLAMES_REPRO_DIR
#error "FLAMES_REPRO_DIR must point at tests/scenario/repros"
#endif

namespace flames::scenario {
namespace {

TEST(Shrink, PassingScenarioIsReturnedUnchanged) {
  const Scenario s = sampleScenario(1);
  const ShrinkResult r = shrink(s, {});
  EXPECT_EQ(r.scenario, s);
  EXPECT_EQ(r.accepted, 0u);
}

TEST(Shrink, ReducesAlwaysFailingScenarioToMinimum) {
  // A fault targeting a component that does not exist fails the oracle for
  // every topology, so the fixpoint must drive the scenario to its floor:
  // depth 1, a single probe.
  Scenario s = sampleScenario(1);
  s.topology.family = Family::kLadder;
  s.topology.depth = 6;
  s.fault = circuit::Fault::open("R_missing");
  const auto full = buildTopology(s.topology);
  s.probes = full.probes;
  ASSERT_FALSE(runOracle(s).passed());

  const ShrinkResult r = shrink(s, {});
  EXPECT_GT(r.accepted, 0u);
  EXPECT_LE(r.attempted, ShrinkOptions{}.maxAttempts);
  EXPECT_EQ(r.scenario.topology.depth, 1u);
  EXPECT_EQ(r.scenario.probes.size(), 1u);
  EXPECT_FALSE(runOracle(r.scenario).passed());
}

TEST(Shrink, ShrunkScenarioStaysReplayable) {
  Scenario s = sampleScenario(1);
  s.fault = circuit::Fault::open("R_missing");
  const ShrinkResult r = shrink(s, {});
  // Serialization round-trip of the shrunk form: what --replay consumes.
  EXPECT_EQ(parseScenario(serialize(r.scenario)), r.scenario);
}

TEST(Shrink, CommittedReproFailsStrictOracleAndPassesDefault) {
  // tests/scenario/repros/rank2_bridge.scenario is the checked-in output of
  //   flames_scenario --replay=<failure> --require-rank=1 --shrink
  // on a bridge scenario whose culprit legitimately ranks second: the
  // deliberately broken "must rank first" oracle demonstrates the shrinking
  // workflow end to end. The default oracle must accept it (it IS a correct
  // diagnosis); the strict oracle must keep rejecting it, else the repro
  // has gone stale.
  const Scenario s =
      loadScenarioFile(std::string(FLAMES_REPRO_DIR) + "/rank2_bridge.scenario");

  const OracleResult relaxed = runOracle(s);
  EXPECT_TRUE(relaxed.passed())
      << (relaxed.violations.empty() ? "" : relaxed.violations[0]);

  OracleOptions strict;
  strict.requireRankAtMost = 1;
  const OracleResult r = runOracle(s, strict);
  EXPECT_FALSE(r.passed());
  EXPECT_GT(r.culpritRank, 1) << "culprit now ranks first; repro is stale";
}

}  // namespace
}  // namespace flames::scenario
