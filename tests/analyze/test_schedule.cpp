// The compiled propagation schedule (flames::analyze fourth pass): watch
// sets, block layering, impact cones with certified step bounds — plus
// golden-file snapshots of the rendered report (text and JSON) for the four
// generator families and the Fig. 6/7 amplifier, so any drift in the
// compiled plan shows up as a readable diff.
//
// Updating intentionally-changed goldens:
//
//   FLAMES_UPDATE_GOLDEN=1 ctest --test-dir build -R ScheduleGolden
#include "analyze/schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "scenario/topology.h"

#ifndef FLAMES_SCHEDULE_GOLDEN_DIR
#error "FLAMES_SCHEDULE_GOLDEN_DIR must point at tests/analyze/golden"
#endif

namespace flames::analyze {
namespace {

circuit::Netlist divider() {
  circuit::Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

TEST(Schedule, DividerPlanShape) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const ScheduleAnalysis s = computeSchedule(built.model);
  const std::size_t nq = built.model.quantityCount();
  const std::size_t nc = built.model.constraints().size();
  ASSERT_TRUE(s.plan.compatibleWith(nq, nc));
  EXPECT_EQ(s.plan.cones.size(), nq);
  EXPECT_EQ(s.plan.constraints.size(), nc);
  EXPECT_EQ(s.plan.watchers.size(), nq);
  // Every shipped constraint class is solvable in every direction, so all
  // slots are watched and nothing is inert.
  EXPECT_EQ(s.watchedSlotCount, s.totalSlotCount);
  EXPECT_EQ(s.solvableTargetCount, s.totalSlotCount);
  EXPECT_TRUE(s.inertConstraints.empty());
  EXPECT_GE(s.layerCount, 1u);
}

TEST(Schedule, WatchersAreConsistentWithWatchedSlots) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const ScheduleAnalysis s = computeSchedule(built.model);
  // watchers[q] lists exactly the constraints with a watched slot on q.
  for (std::size_t q = 0; q < s.plan.watchers.size(); ++q) {
    for (const std::size_t ci : s.plan.watchers[q]) {
      const auto& vars = built.model.constraints()[ci]->variables();
      bool watchesQ = false;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (vars[i] == q && s.plan.constraints[ci].watchedSlots[i] != 0) {
          watchesQ = true;
        }
      }
      EXPECT_TRUE(watchesQ) << "constraint " << ci << " listed on " << q;
    }
  }
}

TEST(Schedule, ConnectedModelConesSpanTheComponent) {
  // The divider's constraint graph is one connected component of
  // everywhere-solvable constraints: every cone must honestly report the
  // whole component, and the summary must count them all.
  const auto built = constraints::buildDiagnosticModel(divider());
  const ScheduleAnalysis s = computeSchedule(built.model);
  EXPECT_EQ(s.wholeComponentCones, s.cones.size());
  for (const ConeSummary& c : s.cones) {
    EXPECT_TRUE(c.wholeComponent) << c.quantity;
    EXPECT_GT(c.stepBound, 0u) << c.quantity;
  }
}

TEST(Schedule, ConeStepBoundGrowsWithTheEntryCap) {
  const auto built = constraints::buildDiagnosticModel(divider());
  ScheduleOptions small;
  small.entryCap = 4;
  ScheduleOptions big;
  big.entryCap = 24;
  const ScheduleAnalysis a = computeSchedule(built.model, small);
  const ScheduleAnalysis b = computeSchedule(built.model, big);
  ASSERT_EQ(a.cones.size(), b.cones.size());
  for (std::size_t i = 0; i < a.cones.size(); ++i) {
    EXPECT_LE(a.cones[i].stepBound, b.cones[i].stepBound);
  }
  EXPECT_EQ(a.entryCap, 4u);
  EXPECT_EQ(b.entryCap, 24u);
}

TEST(Schedule, CompatibleWithRejectsOtherShapes) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const ScheduleAnalysis s = computeSchedule(built.model);
  const std::size_t nq = built.model.quantityCount();
  const std::size_t nc = built.model.constraints().size();
  EXPECT_TRUE(s.plan.compatibleWith(nq, nc));
  EXPECT_FALSE(s.plan.compatibleWith(nq + 1, nc));
  EXPECT_FALSE(s.plan.compatibleWith(nq, nc + 1));
}

TEST(Schedule, RenderedReportHasItsSections) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const std::string text = renderScheduleReport(computeSchedule(built.model));
  EXPECT_NE(text.find("layers"), std::string::npos);
  EXPECT_NE(text.find("watched slots"), std::string::npos);
  EXPECT_NE(text.find("cone step bounds"), std::string::npos);
}

TEST(Schedule, JsonReportIsBalancedAndKeyed) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const std::string json = scheduleReportJson(computeSchedule(built.model));
  for (const char* key :
       {"\"entry_cap\"", "\"layer_count\"", "\"watched_slots\"",
        "\"cones\"", "\"step_bound\"", "\"whole_component\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- Golden snapshots --------------------------------------------------------

std::string goldenPath(const std::string& name) {
  return std::string(FLAMES_SCHEDULE_GOLDEN_DIR) + "/" + name;
}

void compareGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (std::getenv("FLAMES_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << path << " missing - run with FLAMES_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "schedule drifted from " << path
      << "; if intentional, re-run with FLAMES_UPDATE_GOLDEN=1 and review "
         "the diff";
}

void checkFamilyGolden(scenario::Family family, std::size_t depth,
                       std::size_t width, const std::string& stem) {
  scenario::TopologySpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.width = width;
  spec.valueSeed = 42;
  const scenario::Topology topo = scenario::buildTopology(spec);
  const auto built = constraints::buildDiagnosticModel(topo.net);
  const ScheduleAnalysis s = computeSchedule(built.model);
  compareGolden(stem + ".txt", renderScheduleReport(s));
  compareGolden(stem + ".json", scheduleReportJson(s));
}

TEST(ScheduleGolden, Ladder) {
  checkFamilyGolden(scenario::Family::kLadder, 3, 1, "schedule_ladder_d3");
}

TEST(ScheduleGolden, Divider) {
  checkFamilyGolden(scenario::Family::kDivider, 3, 1, "schedule_divider_d3");
}

TEST(ScheduleGolden, Bridge) {
  checkFamilyGolden(scenario::Family::kBridge, 2, 1, "schedule_bridge_d2");
}

TEST(ScheduleGolden, AmpChain) {
  checkFamilyGolden(scenario::Family::kAmpChain, 2, 2,
                    "schedule_ampchain_d2w2");
}

TEST(ScheduleGolden, Fig6Amp) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const ScheduleAnalysis s = computeSchedule(built.model);
  compareGolden("schedule_fig6_amp.txt", renderScheduleReport(s));
  compareGolden("schedule_fig6_amp.json", scheduleReportJson(s));
}

}  // namespace
}  // namespace flames::analyze
