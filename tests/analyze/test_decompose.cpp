// Decomposition pass: graph components, articulation quantities,
// biconnected blocks, and the structural ambiguity groups with their
// splitting-probe suggestions.
#include "analyze/decompose.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "workload/generators.h"

namespace flames::analyze {
namespace {

circuit::Netlist divider() {
  circuit::Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(Decompose, DividerStructure) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const Decomposition d = computeDecomposition(built);
  EXPECT_EQ(d.graphComponents, 1u);
  ASSERT_EQ(d.independentSubproblems.size(), 1u);
  EXPECT_EQ(d.independentSubproblems[0],
            (std::vector<std::string>{"R1", "R2"}));
  // The shared series current is the cut vertex between the two Ohm blocks.
  EXPECT_TRUE(contains(d.articulationQuantities, "I(R1)"));
  EXPECT_EQ(d.biconnectedBlocks, 3u);
}

TEST(Decompose, DividerResistorsAreInherentlyAmbiguous) {
  // With only V(in) and V(mid) observable, a high R1 is indistinguishable
  // from a low R2: one inherent two-member group, no splitting probe.
  const auto built = constraints::buildDiagnosticModel(divider());
  const Decomposition d = computeDecomposition(built);
  ASSERT_EQ(d.ambiguityGroups.size(), 1u);
  const AmbiguityGroup& g = d.ambiguityGroups[0];
  EXPECT_EQ(g.components, (std::vector<std::string>{"R1", "R2"}));
  EXPECT_TRUE(g.inherent());
  EXPECT_EQ(g.unresolvedPairs, 1u);
}

TEST(Decompose, ThreeStageAmpGroupsMatchTheStages) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const Decomposition d = computeDecomposition(built);
  ASSERT_EQ(d.ambiguityGroups.size(), 2u);
  EXPECT_EQ(d.ambiguityGroups[0].components,
            (std::vector<std::string>{"R1", "R2", "R3", "R4", "T2"}));
  EXPECT_EQ(d.ambiguityGroups[1].components,
            (std::vector<std::string>{"R5", "R6", "T3"}));
  for (const AmbiguityGroup& g : d.ambiguityGroups) {
    EXPECT_TRUE(g.inherent());
  }
}

TEST(Decompose, BufferedStagesAreIndependentPerStage) {
  // Each dividerCascade stage hides behind an ideal buffer, so ambiguity
  // stays local: one {Rt_i, Rb_i} group per stage.
  const auto built =
      constraints::buildDiagnosticModel(workload::dividerCascade(3));
  const Decomposition d = computeDecomposition(built);
  ASSERT_EQ(d.ambiguityGroups.size(), 3u);
  EXPECT_EQ(d.ambiguityGroups[0].components,
            (std::vector<std::string>{"Rb1", "Rt1"}));
  EXPECT_EQ(d.ambiguityGroups[1].components,
            (std::vector<std::string>{"Rb2", "Rt2"}));
  EXPECT_EQ(d.ambiguityGroups[2].components,
            (std::vector<std::string>{"Rb3", "Rt3"}));
  EXPECT_EQ(d.biconnectedBlocks, 5u);
}

TEST(Decompose, RestrictedProbeSetMergesGroupsAndSuggestsASplit) {
  // Observing only the final tap collapses the cascade into one big group —
  // and the pass recommends the mid node of stage 2 as the probe separating
  // the most member pairs.
  const auto built =
      constraints::buildDiagnosticModel(workload::dividerCascade(3));
  DecomposeOptions opts;
  opts.probes = {built.voltage("t3")};
  const Decomposition d = computeDecomposition(built, opts);
  ASSERT_EQ(d.ambiguityGroups.size(), 1u);
  const AmbiguityGroup& g = d.ambiguityGroups[0];
  EXPECT_EQ(g.components.size(), 9u);
  EXPECT_FALSE(g.inherent());
  EXPECT_EQ(g.splittingProbe, "V(m2)");
  EXPECT_GT(g.unresolvedPairs, 0u);
}

TEST(Decompose, GainChainIsFullyDistinguishableWithAllProbes) {
  const auto built =
      constraints::buildDiagnosticModel(workload::gainChain(3));
  const Decomposition d = computeDecomposition(built);
  EXPECT_TRUE(d.ambiguityGroups.empty());
  // Every internal tap is a cut vertex of the chain.
  EXPECT_TRUE(contains(d.articulationQuantities, "V(t1)"));
  EXPECT_TRUE(contains(d.articulationQuantities, "V(t2)"));
}

TEST(Decompose, GainChainEndProbeOnlyIsAmbiguousWithASplit) {
  const auto built =
      constraints::buildDiagnosticModel(workload::gainChain(3));
  DecomposeOptions opts;
  opts.probes = {built.voltage("t3")};
  const Decomposition d = computeDecomposition(built, opts);
  ASSERT_EQ(d.ambiguityGroups.size(), 1u);
  const AmbiguityGroup& g = d.ambiguityGroups[0];
  EXPECT_EQ(g.components,
            (std::vector<std::string>{"amp1", "amp2", "amp3"}));
  EXPECT_EQ(g.splittingProbe, "V(t1)");
  EXPECT_EQ(g.unresolvedPairs, 1u);
}

}  // namespace
}  // namespace flames::analyze
