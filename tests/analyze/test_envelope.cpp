// Envelope pass: lattice operations, seeding, depth monotonicity, widening
// soundness, and the unit-level I8 check (every retained propagator entry
// sits inside its static envelope).
#include "analyze/envelope.h"

#include <gtest/gtest.h>

#include <limits>

#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::analyze {
namespace {

circuit::Netlist divider() {
  circuit::Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

TEST(Envelope, BottomJoinAndContainment) {
  Envelope e;
  EXPECT_TRUE(e.bottom);
  EXPECT_FALSE(e.bounded());
  EXPECT_EQ(e.width(), 0.0);

  EXPECT_TRUE(e.join(1.0, 2.0));
  EXPECT_FALSE(e.bottom);
  EXPECT_TRUE(e.bounded());
  EXPECT_DOUBLE_EQ(e.lo, 1.0);
  EXPECT_DOUBLE_EQ(e.hi, 2.0);

  // A join inside the current bounds does not grow the envelope.
  EXPECT_FALSE(e.join(1.2, 1.8));
  EXPECT_TRUE(e.join(0.0, 3.0));
  EXPECT_DOUBLE_EQ(e.lo, 0.0);
  EXPECT_DOUBLE_EQ(e.hi, 3.0);

  EXPECT_TRUE(e.contains(fuzzy::Cut{0.5, 2.5}));
  EXPECT_FALSE(e.contains(fuzzy::Cut{-1.0, 2.0}));
  // Tolerance slack admits supports that poke out by a rounding error.
  EXPECT_TRUE(e.contains(fuzzy::Cut{-1e-9, 3.0}));
}

TEST(Envelope, TopPredicates) {
  const Envelope t = Envelope::top();
  EXPECT_TRUE(t.isTop());
  EXPECT_TRUE(t.unbounded());
  EXPECT_FALSE(t.bounded());
  EXPECT_TRUE(t.contains(fuzzy::Cut{-1e30, 1e30}));

  Envelope half;
  half.join(0.0, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(half.unbounded());
  EXPECT_FALSE(half.isTop());
}

TEST(Envelope, DividerIsFullyBoundedWithinDepthRounds) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const EnvelopeAnalysis a = computeEnvelopes(built.model);
  EXPECT_EQ(a.quantities.size(), built.model.quantityCount());
  EXPECT_EQ(a.rounds, static_cast<std::size_t>(EnvelopeOptions{}.maxDepth));
  EXPECT_EQ(a.widenings, 0u);
  EXPECT_EQ(a.unboundedCount(), 0u);
}

TEST(Envelope, SeedsCoverPredictionsAndMeasurementRange) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const EnvelopeOptions opts;
  const EnvelopeAnalysis a = computeEnvelopes(built.model, opts);

  // Every a-priori prediction support is contained (seed soundness).
  for (const auto& p : built.model.predictions()) {
    EXPECT_TRUE(a.of(p.quantity).contains(p.value.support()))
        << built.model.quantityInfo(p.quantity).name;
  }
  // Voltage quantities additionally admit any instrument-range measurement.
  for (constraints::QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    if (built.model.quantityInfo(q).kind != constraints::QuantityKind::kVoltage)
      continue;
    EXPECT_LE(a.of(q).lo, -opts.measurementRange);
    EXPECT_GE(a.of(q).hi, opts.measurementRange);
  }
}

TEST(Envelope, DeeperIterationOnlyWidens) {
  const auto built = constraints::buildDiagnosticModel(divider());
  EnvelopeOptions shallow;
  shallow.maxDepth = 2;
  EnvelopeOptions deep;
  deep.maxDepth = 8;
  const EnvelopeAnalysis a2 = computeEnvelopes(built.model, shallow);
  const EnvelopeAnalysis a8 = computeEnvelopes(built.model, deep);
  for (constraints::QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    if (a2.of(q).bottom) continue;
    EXPECT_LE(a8.of(q).lo, a2.of(q).lo);
    EXPECT_GE(a8.of(q).hi, a2.of(q).hi);
  }
}

TEST(Envelope, EagerWideningStaysSound) {
  // Forcing the ladder widening on from round one may only lose precision,
  // never containment: every default-run envelope must sit inside the
  // widened one.
  const auto built = constraints::buildDiagnosticModel(divider());
  EnvelopeOptions eager;
  eager.wideningDelay = 1;
  const EnvelopeAnalysis precise = computeEnvelopes(built.model);
  const EnvelopeAnalysis widened = computeEnvelopes(built.model, eager);
  for (constraints::QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    if (precise.of(q).bottom) continue;
    EXPECT_LE(widened.of(q).lo, precise.of(q).lo)
        << built.model.quantityInfo(q).name;
    EXPECT_GE(widened.of(q).hi, precise.of(q).hi)
        << built.model.quantityInfo(q).name;
  }
}

// Unit-level I8: after a real propagation (nominal predictions plus a
// deliberately faulty measurement), the support of every retained value
// entry is contained in the statically computed envelope.
void expectRuntimeInsideEnvelopes(const constraints::BuiltModel& built,
                                  const constraints::Propagator& p,
                                  const EnvelopeAnalysis& a) {
  for (constraints::QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    for (const constraints::ValueEntry& e : p.values(q)) {
      EXPECT_TRUE(a.of(q).contains(e.value.support()))
          << built.model.quantityInfo(q).name << " ["
          << e.value.support().lo << ", " << e.value.support().hi
          << "] outside [" << a.of(q).lo << ", " << a.of(q).hi << "]";
    }
  }
}

TEST(Envelope, RuntimeEntriesStayInsideEnvelopesDivider) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const EnvelopeAnalysis a = computeEnvelopes(built.model);
  constraints::Propagator p(built.model);
  p.addMeasurement(built.voltage("mid"),
                   fuzzy::FuzzyInterval::about(7.5, 0.05));
  p.run();
  ASSERT_TRUE(p.completed());
  expectRuntimeInsideEnvelopes(built, p, a);
}

TEST(Envelope, RuntimeEntriesStayInsideEnvelopesThreeStageAmp) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const EnvelopeAnalysis a = computeEnvelopes(built.model);
  constraints::Propagator p(built.model);
  p.addMeasurement(built.voltage("V2"), fuzzy::FuzzyInterval::about(1.0, 0.1));
  p.run();
  expectRuntimeInsideEnvelopes(built, p, a);
}

}  // namespace
}  // namespace flames::analyze
