// The aggregated analysis: A1-A3 findings, option mapping from the runtime
// propagation knobs, entry-cap recommendation, report rendering, and the
// lint-corpus sweep (clean fixtures must analyze without errors; the
// committed three-stage amp pins its ambiguity-group golden).
#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "circuit/parser.h"
#include "constraints/model_builder.h"
#include "lint/lint.h"

#ifndef FLAMES_LINT_CORPUS_DIR
#error "FLAMES_LINT_CORPUS_DIR must point at tests/lint/corpus"
#endif

namespace flames::analyze {
namespace {

namespace fs = std::filesystem;

circuit::Netlist divider() {
  circuit::Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

circuit::Netlist star(std::size_t arms) {
  circuit::Netlist n;
  n.addVSource("V1", "hub", "0", 5.0);
  for (std::size_t i = 1; i <= arms; ++i) {
    n.addResistor("R" + std::to_string(i), "hub", "0", 1.0, 0.05);
  }
  return n;
}

bool hasFinding(const lint::LintReport& r, const std::string& rule,
                lint::Severity severity, const std::string& fragment = "") {
  return std::any_of(
      r.diagnostics.begin(), r.diagnostics.end(),
      [&](const lint::Diagnostic& d) {
        return d.rule == rule && d.severity == severity &&
               d.message.find(fragment) != std::string::npos;
      });
}

TEST(AnalyzeRules, OptionsMirrorThePropagationKnobs) {
  constraints::PropagatorOptions popts;
  popts.maxDepth = 7;
  popts.maxDerivedWidth = 123.0;
  popts.maxSteps = 999;
  popts.maxEntriesPerQuantity = 10;
  const AnalysisOptions o = analysisOptionsFor(popts);
  EXPECT_EQ(o.envelope.maxDepth, 7);
  EXPECT_DOUBLE_EQ(o.envelope.maxDerivedWidth, 123.0);
  EXPECT_EQ(o.cost.maxDepth, 7);
  EXPECT_EQ(o.cost.maxStepsBudget, 999u);
  EXPECT_EQ(o.cost.stockEntryCap, 10u);
}

TEST(AnalyzeRules, RecommendedCapClampsToTheDerivedOne) {
  AnalysisReport r;
  r.cost.derivedEntryCap = 10;
  EXPECT_EQ(recommendedEntryCap(r, 24), 10u);
  EXPECT_EQ(recommendedEntryCap(r, 8), 8u);
  // An empty report (no cost pass ran) leaves the request alone.
  AnalysisReport empty;
  EXPECT_EQ(recommendedEntryCap(empty, 24), 24u);
}

TEST(AnalyzeRules, DividerAnalyzesCleanWithStructureNotes) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const AnalysisReport r = analyzeModel(built);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.findings.warnings(), 0u);
  // The inherent R1/R2 group and the uncertified fixpoint are info notes.
  EXPECT_TRUE(hasFinding(r.findings, "A3", lint::Severity::kInfo,
                         "inherent to the topology"));
  EXPECT_TRUE(hasFinding(r.findings, "A2", lint::Severity::kInfo,
                         "fixpoint not certified"));
}

TEST(AnalyzeRules, AmpReportsItsDerivedCap) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const AnalysisReport r = analyzeModel(built);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasFinding(r.findings, "A2", lint::Severity::kInfo,
                         "derived entry cap"));
  EXPECT_LT(r.cost.derivedEntryCap, CostOptions{}.stockEntryCap);
}

TEST(AnalyzeRules, StarNodeIsAnA2ErrorWithA1Warnings) {
  const AnalysisReport r =
      analyzeModel(constraints::buildDiagnosticModel(star(8)));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasFinding(r.findings, "A2", lint::Severity::kError,
                         "intractable"));
  EXPECT_TRUE(hasFinding(r.findings, "A1", lint::Severity::kWarning,
                         "unbounded"));
  // Error-ordered: the report leads with the intractability finding.
  ASSERT_FALSE(r.findings.diagnostics.empty());
  EXPECT_EQ(r.findings.diagnostics.front().severity, lint::Severity::kError);
}

TEST(AnalyzeRules, PassesCanBeDisabledIndividually) {
  const auto built = constraints::buildDiagnosticModel(divider());
  AnalysisOptions opts;
  opts.runEnvelopes = false;
  opts.runCost = false;
  opts.runDecomposition = false;
  opts.runSchedule = false;
  const AnalysisReport r = analyzeModel(built, opts);
  EXPECT_TRUE(r.findings.diagnostics.empty());
  EXPECT_TRUE(r.envelopes.quantities.empty());
  EXPECT_EQ(r.cost.derivedEntryCap, 0u);
  EXPECT_EQ(r.decomposition.graphComponents, 0u);
  EXPECT_TRUE(r.schedule.cones.empty());
}

TEST(AnalyzeRules, RenderedReportHasitsSections) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const std::string text = renderAnalysisReport(analyzeModel(built));
  EXPECT_NE(text.find("static envelopes"), std::string::npos);
  EXPECT_NE(text.find("propagation cost"), std::string::npos);
  EXPECT_NE(text.find("structure"), std::string::npos);
  EXPECT_NE(text.find("R1"), std::string::npos);
}

TEST(AnalyzeRules, JsonReportIsBalancedAndKeyed) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const std::string json = analysisReportJson(analyzeModel(built));
  for (const char* key : {"\"envelopes\"", "\"cost\"", "\"structure\"",
                          "\"findings\"", "\"derived_entry_cap\"",
                          "\"step_bound\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(AnalyzeRules, CleanCorpusFixturesAnalyzeWithoutErrorsOrWarnings) {
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(FLAMES_LINT_CORPUS_DIR)) {
    const std::string stem = entry.path().stem().string();
    if (stem.rfind("clean_", 0) != 0) continue;
    ++seen;
    const auto net = circuit::parseNetlistFile(entry.path().string());
    const AnalysisReport r =
        analyzeModel(constraints::buildDiagnosticModel(net));
    EXPECT_TRUE(r.ok()) << stem;
    EXPECT_EQ(r.findings.warnings(), 0u) << stem;
  }
  EXPECT_GE(seen, 2u);
}

TEST(AnalyzeRules, CorpusAmpAmbiguityGolden) {
  // The committed three-stage amp fixture pins the stage-local ambiguity
  // groups: biasing network + driver of stage 2, and the output stage.
  const auto net = circuit::parseNetlistFile(
      std::string(FLAMES_LINT_CORPUS_DIR) + "/clean_three_stage_amp.cir");
  const AnalysisReport r =
      analyzeModel(constraints::buildDiagnosticModel(net));
  ASSERT_EQ(r.decomposition.ambiguityGroups.size(), 2u);
  EXPECT_EQ(r.decomposition.ambiguityGroups[0].components,
            (std::vector<std::string>{"Q2", "R1", "R2", "R3", "R4"}));
  EXPECT_EQ(r.decomposition.ambiguityGroups[1].components,
            (std::vector<std::string>{"Q3", "R5", "R6"}));
  for (const AmbiguityGroup& g : r.decomposition.ambiguityGroups) {
    EXPECT_TRUE(g.inherent());
  }
}

}  // namespace
}  // namespace flames::analyze
