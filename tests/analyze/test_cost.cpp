// Cost pass: monotonicity of the work estimate and fixpoint bound in the
// entry cap, cap derivation against the admission budget, intractability
// flagging, and the unit-level I9 check (observed steps within the
// certified bound).
#include "analyze/cost.h"

#include <gtest/gtest.h>

#include <string>

#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::analyze {
namespace {

circuit::Netlist divider() {
  circuit::Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

/// N resistors in parallel: one KCL node of fan-in N+1, the canonical
/// work-estimate explosion (cap^arity derivations per firing).
circuit::Netlist star(std::size_t arms) {
  circuit::Netlist n;
  n.addVSource("V1", "hub", "0", 5.0);
  for (std::size_t i = 1; i <= arms; ++i) {
    n.addResistor("R" + std::to_string(i), "hub", "0", 1.0, 0.05);
  }
  return n;
}

TEST(Cost, WorkEstimateIsMonotoneInTheCap) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const double w6 = workEstimate(built.model, 6);
  const double w12 = workEstimate(built.model, 12);
  const double w24 = workEstimate(built.model, 24);
  EXPECT_GT(w6, 0.0);
  EXPECT_LE(w6, w12);
  EXPECT_LE(w12, w24);
}

TEST(Cost, FixpointBoundIsMonotoneInCapAndDepth) {
  const auto built = constraints::buildDiagnosticModel(divider());
  CostOptions shallow;
  shallow.maxDepth = 2;
  CostOptions deeper;
  deeper.maxDepth = 4;
  EXPECT_LE(fixpointBound(built.model, 6, shallow),
            fixpointBound(built.model, 12, shallow));
  EXPECT_LE(fixpointBound(built.model, 6, shallow),
            fixpointBound(built.model, 6, deeper));
}

TEST(Cost, FixpointBoundSaturatesOnCyclicModelsAtFullDepth) {
  // The V -> I -> V cycle through Ohm's law makes the layered bound doubly
  // exponential in depth; at the stock depth it must saturate rather than
  // overflow.
  const auto built = constraints::buildDiagnosticModel(divider());
  EXPECT_EQ(fixpointBound(built.model, 24), kCostSaturated);
}

TEST(Cost, TractableModelKeepsTheStockCap) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const CostModel cost = computeCostModel(built.model);
  const CostOptions defaults;
  EXPECT_EQ(cost.derivedEntryCap, defaults.stockEntryCap);
  EXPECT_FALSE(cost.intractableAtFloor);
  EXPECT_LE(cost.workEstimateAtDerived, defaults.workBudget);
  // The cyclic bound saturates, so the certified bound is the runtime
  // budget: min(fixpointBound, maxSteps + 1).
  EXPECT_FALSE(cost.fixpointCertified);
  EXPECT_EQ(cost.stepBound, defaults.maxStepsBudget + 1);
}

TEST(Cost, AmpCapIsLoweredToFitTheBudget) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const CostModel cost = computeCostModel(built.model);
  const CostOptions defaults;
  // The three-stage amp overruns the budget at the stock cap; the derived
  // cap is the largest one that fits.
  EXPECT_GT(cost.workEstimateAtStock, defaults.workBudget);
  EXPECT_LT(cost.derivedEntryCap, defaults.stockEntryCap);
  EXPECT_GE(cost.derivedEntryCap, defaults.floorEntryCap);
  EXPECT_LE(cost.workEstimateAtDerived, defaults.workBudget);
  EXPECT_FALSE(cost.intractableAtFloor);
  // Largest: one cap higher must overrun.
  EXPECT_GT(workEstimate(built.model, cost.derivedEntryCap + 1),
            defaults.workBudget);
}

TEST(Cost, StarNodeIsIntractableEvenAtTheFloor) {
  const auto built = constraints::buildDiagnosticModel(star(8));
  const CostModel cost = computeCostModel(built.model);
  const CostOptions defaults;
  EXPECT_TRUE(cost.intractableAtFloor);
  EXPECT_EQ(cost.derivedEntryCap, defaults.floorEntryCap);
  EXPECT_GT(cost.workEstimateAtDerived, defaults.workBudget);
}

TEST(Cost, PerConstraintSharesAreSortedAndSumToTheEstimate) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  const CostModel cost = computeCostModel(built.model);
  ASSERT_EQ(cost.perConstraint.size(), built.model.constraints().size());
  double sum = 0.0;
  for (std::size_t i = 0; i < cost.perConstraint.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(cost.perConstraint[i - 1].workPerSweep,
                cost.perConstraint[i].workPerSweep);
    }
    EXPECT_FALSE(cost.perConstraint[i].name.empty());
    sum += cost.perConstraint[i].workPerSweep;
  }
  EXPECT_NEAR(sum, cost.workEstimateAtDerived,
              1e-9 * cost.workEstimateAtDerived);
}

// Unit-level I9: a real propagation under the derived cap never exceeds the
// certified step bound.
TEST(Cost, ObservedStepsStayWithinTheCertifiedBound) {
  const auto built = constraints::buildDiagnosticModel(divider());
  const CostModel cost = computeCostModel(built.model);
  constraints::PropagatorOptions popts;
  popts.maxEntriesPerQuantity = cost.derivedEntryCap;
  constraints::Propagator p(built.model, popts);
  p.addMeasurement(built.voltage("mid"),
                   fuzzy::FuzzyInterval::about(7.5, 0.05));
  p.run();
  EXPECT_LE(p.steps(), cost.stepBound);
  EXPECT_LE(p.steps(), cost.maxRetainedEntries);
}

}  // namespace
}  // namespace flames::analyze
