// Unit tests for the model-level lint rules: L2 (unreachable quantities),
// L5 (KB/experience cross-checks), L6 (diagnosability audit) and the
// lintModel() aggregator.
#include "lint/model_lint.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "diagnosis/deviation_analysis.h"
#include "diagnosis/knowledge_base.h"
#include "diagnosis/learning.h"

namespace flames::lint {
namespace {

using circuit::Netlist;

// Series chain in → a → b → 0: from node "a" alone, R2 and R3 shift V(a)
// the same way, so their faults are indistinguishable there; node "b"
// separates them.
Netlist seriesChain() {
  Netlist net;
  net.addVSource("V1", "in", "0", 10.0);
  net.addResistor("R1", "in", "a", 1e3, 0.01);
  net.addResistor("R2", "a", "b", 1e3, 0.01);
  net.addResistor("R3", "b", "0", 1e3, 0.01);
  return net;
}

bool hasRule(const LintReport& r, const std::string& rule, Severity sev) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == rule && d.severity == sev) return true;
  }
  return false;
}

// --- L2: unreachable quantities ---------------------------------------------

TEST(LintL2, OrphanQuantityWarns) {
  // Hand-built model: one quantity nothing constrains or predicts. (A real
  // netlist cannot easily produce this — an isolated node makes the MNA
  // solve fail first — which is exactly why the rule exists for
  // hand-assembled or future model sources.)
  constraints::BuiltModel built;
  built.model.addQuantity("V(orphan)");
  const LintReport r = lintBuiltModel(built);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "L2");
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kWarning);
  EXPECT_NE(r.diagnostics[0].location.find("V(orphan)"), std::string::npos);
}

TEST(LintL2, FullyBuiltModelHasNoOrphans) {
  const Netlist net = seriesChain();
  const auto built = constraints::buildDiagnosticModel(net);
  const LintReport r = lintBuiltModel(built);
  EXPECT_TRUE(r.clean()) << renderLintReport(r);
}

TEST(LintL2, DisabledRuleReportsNothing) {
  constraints::BuiltModel built;
  built.model.addQuantity("V(orphan)");
  LintOptions opts;
  opts.reachability = false;
  EXPECT_TRUE(lintBuiltModel(built, opts).clean());
}

// --- L5: knowledge base and experience --------------------------------------

TEST(LintL5, RuleWithOutOfRangeQuantityIdIsAnError) {
  const Netlist net = seriesChain();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::KnowledgeBase kb;
  diagnosis::FuzzyRule rule;
  rule.name = "bogus";
  rule.antecedents.push_back(
      {static_cast<constraints::QuantityId>(built.model.quantityCount() + 7),
       fuzzy::FuzzyInterval::crisp(1.0)});
  kb.addRule(rule);
  const LintReport r = lintKnowledgeBase(kb, built, net);
  EXPECT_TRUE(hasRule(r, "L5", Severity::kError));
}

TEST(LintL5, RuleNamingAbsentComponentWarns) {
  const Netlist net = seriesChain();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::KnowledgeBase kb;
  diagnosis::FuzzyRule rule;
  rule.name = "region(T9)/saturated";  // no T9 in the chain
  rule.antecedents.push_back({built.voltage("a"),
                              fuzzy::FuzzyInterval::crisp(1.0)});
  kb.addRule(rule);
  const LintReport r = lintKnowledgeBase(kb, built, net);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasRule(r, "L5", Severity::kWarning));
}

TEST(LintL5, GeneratedRegionRulesLintClean) {
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::KnowledgeBase kb;
  diagnosis::addTransistorRegionRules(kb, net, built);
  ASSERT_GT(kb.size(), 0u);
  EXPECT_TRUE(lintKnowledgeBase(kb, built, net).clean());
}

TEST(LintL5, ExperienceFromAnotherUnitTypeWarns) {
  const Netlist net = seriesChain();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::ExperienceBase experience;
  // Blames a component this netlist lacks, keyed on a quantity it lacks.
  experience.recordSuccess({{"V(n99)", -0.8, -1}}, "R77", "short");
  const LintReport r = lintExperience(experience, built, net);
  EXPECT_TRUE(r.ok());
  std::size_t l5 = r.byRule("L5").size();
  EXPECT_EQ(l5, 2u) << renderLintReport(r);  // component + quantity finding
}

TEST(LintL5, MatchingExperienceLintsClean) {
  const Netlist net = seriesChain();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::ExperienceBase experience;
  experience.recordSuccess({{"V(a)", -0.8, -1}}, "R2", "short");
  EXPECT_TRUE(lintExperience(experience, built, net).clean());
}

// --- L6: diagnosability ------------------------------------------------------

TEST(LintL6, IndistinguishableGroupReportsSplittingProbe) {
  const Netlist net = seriesChain();
  const diagnosis::SensitivitySigns signs(net);
  LintOptions opts;
  opts.measurementPoints = {"a"};
  const LintReport r = lintDiagnosability(net, signs, opts);
  const Diagnostic* group = nullptr;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == "L6" && d.message.find("R2") != std::string::npos &&
        d.message.find("R3") != std::string::npos) {
      group = &d;
    }
  }
  ASSERT_NE(group, nullptr) << renderLintReport(r);
  EXPECT_EQ(group->severity, Severity::kWarning);
  EXPECT_NE(group->fixHint.find("probe V(b)"), std::string::npos)
      << group->fixHint;
}

TEST(LintL6, InvisibleFaultWarnsWithProbeHint) {
  // V(in) is pinned by the source, so from {in} alone every resistor fault
  // is invisible; the rule must say so and point at a node that sees it.
  const Netlist net = seriesChain();
  const diagnosis::SensitivitySigns signs(net);
  LintOptions opts;
  opts.measurementPoints = {"in"};
  const LintReport r = lintDiagnosability(net, signs, opts);
  bool invisible = false;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == "L6" && d.message.find("invisible") != std::string::npos) {
      invisible = true;
      EXPECT_NE(d.fixHint.find("probe V("), std::string::npos) << d.fixHint;
    }
  }
  EXPECT_TRUE(invisible) << renderLintReport(r);
}

TEST(LintL6, FullProbeCoverageOfChainIsQuiet) {
  // With every node measurable the chain's neighbouring resistors remain
  // confusable only as inherent (info-grade) ambiguity classes, never as
  // warnings.
  const Netlist net = seriesChain();
  const diagnosis::SensitivitySigns signs(net);
  const LintReport r = lintDiagnosability(net, signs, {});
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_EQ(r.warnings(), 0u);
}

TEST(LintL6, DisabledRuleReportsNothing) {
  const Netlist net = seriesChain();
  const diagnosis::SensitivitySigns signs(net);
  LintOptions opts;
  opts.diagnosability = false;
  opts.measurementPoints = {"a"};
  EXPECT_TRUE(lintDiagnosability(net, signs, opts).clean());
}

// --- lintModel() aggregator --------------------------------------------------

TEST(LintModel, RequiresANetlist) {
  EXPECT_THROW(lintModel(ModelLintInputs{}), std::invalid_argument);
}

TEST(LintModel, TypoedMeasurementPointIsAnError) {
  const Netlist net = seriesChain();
  ModelLintInputs inputs;
  inputs.netlist = &net;
  LintOptions opts;
  opts.measurementPoints = {"a", "nope"};
  const LintReport r = lintModel(inputs, opts);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const Diagnostic& d : r.diagnostics) {
    found = found || (d.rule == "L5" &&
                      d.location == "measurement point nope");
  }
  EXPECT_TRUE(found) << renderLintReport(r);
}

TEST(LintModel, SkipsRulesWhoseInputsAreAbsent) {
  const Netlist net = seriesChain();
  ModelLintInputs inputs;
  inputs.netlist = &net;  // no model, no KB, no signs
  const LintReport r = lintModel(inputs);
  EXPECT_TRUE(r.byRule("L2").empty());
  EXPECT_TRUE(r.byRule("L6").empty());
}

TEST(LintModel, PaperThreeStageAmpLintsClean) {
  // The acceptance circuit: Fig. 6/7 of the paper. The full pass — source
  // to diagnosability — must produce no errors and no warnings (inherent
  // info-grade ambiguity classes are allowed).
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::KnowledgeBase kb;
  diagnosis::addTransistorRegionRules(kb, net, built);
  const diagnosis::SensitivitySigns signs(net);
  ModelLintInputs inputs;
  inputs.netlist = &net;
  inputs.built = &built;
  inputs.kb = &kb;
  inputs.signs = &signs;
  const LintReport r = lintModel(inputs);
  EXPECT_EQ(r.errors(), 0u) << renderLintReport(r);
  EXPECT_EQ(r.warnings(), 0u) << renderLintReport(r);
}

}  // namespace
}  // namespace flames::lint
