// Corpus driver: every netlist under tests/lint/corpus/ encodes its own
// expectation in its file name.
//
//   <rule>_<severity>_<slug>.cir  — the source+netlist lint pass must report
//                                   at least one <rule> diagnostic at exactly
//                                   <severity>, and nothing *more* severe
//                                   than <severity> from any rule;
//   clean_<slug>.cir              — the pass must report no errors and no
//                                   warnings at all.
//
// This keeps the corpus self-describing: adding a regression netlist is one
// file with the right name, no driver edit.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/parser.h"
#include "lint/lint.h"

#ifndef FLAMES_LINT_CORPUS_DIR
#error "FLAMES_LINT_CORPUS_DIR must point at tests/lint/corpus"
#endif

namespace flames::lint {
namespace {

namespace fs = std::filesystem;

struct CorpusCase {
  std::string name;  ///< file stem, e.g. "L1_error_floating_island"
  std::string rule;  ///< "" for clean cases
  Severity severity = Severity::kInfo;
  bool clean = false;
  std::string text;
};

Severity parseSeverity(const std::string& word) {
  if (word == "error") return Severity::kError;
  if (word == "warning") return Severity::kWarning;
  if (word == "info") return Severity::kInfo;
  ADD_FAILURE() << "corpus file name with unknown severity '" << word << "'";
  return Severity::kInfo;
}

std::vector<CorpusCase> loadCorpus() {
  std::vector<CorpusCase> cases;
  for (const auto& entry : fs::directory_iterator(FLAMES_LINT_CORPUS_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    CorpusCase c;
    c.name = entry.path().stem().string();
    std::ifstream is(entry.path());
    std::ostringstream buffer;
    buffer << is.rdbuf();
    c.text = buffer.str();
    if (c.name.rfind("clean_", 0) == 0) {
      c.clean = true;
    } else {
      const auto first = c.name.find('_');
      const auto second = c.name.find('_', first + 1);
      c.rule = c.name.substr(0, first);
      c.severity = parseSeverity(c.name.substr(first + 1, second - first - 1));
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

// The same source-then-netlist sequence the CLI lint mode runs.
LintReport lintCorpusText(const std::string& text) {
  LintReport report = lintSource(text);
  if (report.ok()) {
    report.merge(lintNetlist(circuit::parseNetlistString(text)));
  }
  return report;
}

int rank(Severity s) { return static_cast<int>(s); }

TEST(LintCorpus, EveryNetlistMatchesItsEncodedExpectation) {
  const auto cases = loadCorpus();
  // Guards against a wrong CORPUS_DIR silently testing nothing.
  ASSERT_GE(cases.size(), 9u);

  for (const CorpusCase& c : cases) {
    SCOPED_TRACE(c.name);
    const LintReport report = lintCorpusText(c.text);
    if (c.clean) {
      EXPECT_EQ(report.errors(), 0u) << renderLintReport(report);
      EXPECT_EQ(report.warnings(), 0u) << renderLintReport(report);
      continue;
    }
    bool matched = false;
    for (const Diagnostic& d : report.diagnostics) {
      matched = matched || (d.rule == c.rule && d.severity == c.severity);
      // Nothing may out-rank the encoded severity: a warning-grade corpus
      // netlist that suddenly reports an error is a policy regression.
      EXPECT_LE(rank(d.severity), rank(c.severity))
          << "unexpected " << severityName(d.severity) << " [" << d.rule
          << "] " << d.location << ": " << d.message;
    }
    EXPECT_TRUE(matched) << "expected a " << severityName(c.severity) << " ["
                         << c.rule << "] finding; got:\n"
                         << renderLintReport(report);
  }
}

}  // namespace
}  // namespace flames::lint
