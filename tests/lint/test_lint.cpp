// Unit tests for the netlist-level lint rules (L1/L3/L4), the report
// infrastructure, the renderers and the obs counter bridge.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include "circuit/netlist.h"
#include "obs/obs.h"

namespace flames::lint {
namespace {

using circuit::Netlist;

// A small healthy divider every negative test perturbs.
Netlist divider() {
  Netlist net;
  net.addVSource("V1", "in", "0", 10.0);
  net.addResistor("R1", "in", "out", 1e3, 0.01);
  net.addResistor("R2", "out", "0", 1e3, 0.01);
  return net;
}

bool hasDiagnostic(const LintReport& report, const std::string& rule,
                   Severity severity, const std::string& locationPart) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule && d.severity == severity &&
        d.location.find(locationPart) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// --- report infrastructure -------------------------------------------------

TEST(LintReport, CountsAndPredicates) {
  LintReport r;
  r.diagnostics.push_back({"L1", Severity::kError, "a", "m", ""});
  r.diagnostics.push_back({"L3", Severity::kWarning, "b", "m", ""});
  r.diagnostics.push_back({"L3", Severity::kWarning, "c", "m", ""});
  r.diagnostics.push_back({"L6", Severity::kInfo, "d", "m", ""});
  EXPECT_EQ(r.errors(), 1u);
  EXPECT_EQ(r.warnings(), 2u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.byRule("L3").size(), 2u);
  EXPECT_TRUE(r.byRule("L2").empty());
}

TEST(LintReport, NormalizeOrdersErrorsFirstStably) {
  LintReport r;
  r.diagnostics.push_back({"L3", Severity::kWarning, "w1", "m", ""});
  r.diagnostics.push_back({"L6", Severity::kInfo, "i1", "m", ""});
  r.diagnostics.push_back({"L1", Severity::kError, "e1", "m", ""});
  r.diagnostics.push_back({"L4", Severity::kWarning, "w2", "m", ""});
  r.normalize();
  ASSERT_EQ(r.diagnostics.size(), 4u);
  EXPECT_EQ(r.diagnostics[0].location, "e1");
  EXPECT_EQ(r.diagnostics[1].location, "w1");  // stable within a severity
  EXPECT_EQ(r.diagnostics[2].location, "w2");
  EXPECT_EQ(r.diagnostics[3].location, "i1");
}

TEST(LintReport, MergeCombinesAndReorders) {
  LintReport a, b;
  a.diagnostics.push_back({"L3", Severity::kWarning, "w", "m", ""});
  b.diagnostics.push_back({"L1", Severity::kError, "e", "m", ""});
  a.merge(std::move(b));
  ASSERT_EQ(a.diagnostics.size(), 2u);
  EXPECT_EQ(a.diagnostics[0].severity, Severity::kError);
}

TEST(LintReport, CleanNetlistProducesNoFindings) {
  const LintReport r = lintNetlist(divider());
  EXPECT_TRUE(r.clean()) << renderLintReport(r);
}

// --- L1: connectivity -------------------------------------------------------

TEST(LintL1, EmptyNetlistIsAnError) {
  const LintReport r = lintNetlist(Netlist{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L1", Severity::kError, "netlist"));
}

TEST(LintL1, FloatingIslandIsAnError) {
  Netlist net = divider();
  net.addResistor("R3", "a", "b", 1e3, 0.01);  // island {a, b}, no ground
  const LintReport r = lintNetlist(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L1", Severity::kError, "node a"));
  const auto l1 = r.byRule("L1");
  ASSERT_FALSE(l1.empty());
  EXPECT_NE(l1.front()->message.find("no path to ground"), std::string::npos);
}

TEST(LintL1, DanglingNodeIsAWarning) {
  Netlist net = divider();
  net.addResistor("R3", "out", "stub", 1e3, 0.01);  // stub: degree 1
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L1", Severity::kWarning, "node stub"));
}

TEST(LintL1, UnusedNodeIsAWarning) {
  Netlist net = divider();
  net.node("orphan");  // declared, touched by nothing
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L1", Severity::kWarning, "node orphan"));
}

TEST(LintL1, SelfShortedComponentIsAWarning) {
  Netlist net = divider();
  net.addResistor("R3", "out", "out", 1e3, 0.01);
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L1", Severity::kWarning, "component R3"));
}

TEST(LintL1, DisabledRuleReportsNothing) {
  LintOptions opts;
  opts.connectivity = false;
  const LintReport r = lintNetlist(Netlist{}, opts);
  EXPECT_TRUE(r.clean());
}

// --- L3: fuzzy-value sanity -------------------------------------------------

TEST(LintL3, NegativeToleranceIsAnError) {
  Netlist net = divider();
  net.component("R1").relTol = -0.05;
  const LintReport r = lintNetlist(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L3", Severity::kError, "component R1"));
}

TEST(LintL3, NegativeVbeSpreadIsAnError) {
  Netlist net = divider();
  net.addNpn("Q1", "in", "out", "0", 100.0, 0.02, 0.7, 0.01);
  net.component("Q1").vbeSpread = -0.01;
  const LintReport r = lintNetlist(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L3", Severity::kError, "component Q1"));
}

TEST(LintL3, CrispNominalOnTolerancedClassIsAWarning) {
  Netlist net = divider();
  net.component("R2").relTol = 0.0;
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L3", Severity::kWarning, "component R2"));
}

TEST(LintL3, CrispSourceAndDiodeAreFine) {
  // Trusted equipment and the paper's deliberately crisp diodes must not
  // drown the report in warnings (Fig. 5 uses crisp Vf).
  Netlist net;
  net.addVSource("V1", "in", "0", 5.0);
  net.addDiode("D1", "in", "mid", 0.6);
  net.addResistor("R1", "mid", "0", 1e3, 0.01);
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.clean()) << renderLintReport(r);
}

TEST(LintL3, ZeroAreaCurrentRatingIsAWarning) {
  Netlist net;
  net.addVSource("V1", "in", "0", 5.0);
  net.addResistor("R1", "mid", "0", 1e3, 0.01);
  net.addDiode("D1", "in", "mid", 0.6).maxCurrent =
      fuzzy::FuzzyInterval::crisp(1e-3);
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasDiagnostic(r, "L3", Severity::kWarning, "component D1"));
}

TEST(LintL3, DisabledRuleReportsNothing) {
  Netlist net = divider();
  net.component("R1").relTol = -0.05;
  LintOptions opts;
  opts.fuzzyValues = false;
  EXPECT_TRUE(lintNetlist(net, opts).clean());
}

// --- L4: names and source ambiguities ---------------------------------------

TEST(LintL4, CaseShadowedNodeNamesWarn) {
  Netlist net = divider();
  net.addResistor("R3", "OUT", "0", 1e3, 0.01);  // "OUT" vs "out"
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(r.ok());
  bool found = false;
  for (const Diagnostic& d : r.diagnostics) {
    found = found || (d.rule == "L4" &&
                      d.message.find("differ only by case") !=
                          std::string::npos);
  }
  EXPECT_TRUE(found) << renderLintReport(r);
}

TEST(LintL4, CaseShadowedComponentNamesWarn) {
  Netlist net = divider();
  net.addResistor("r1", "in", "0", 1e3, 0.01);  // shadows "R1"
  const LintReport r = lintNetlist(net);
  EXPECT_TRUE(hasDiagnostic(r, "L4", Severity::kWarning, "component"));
}

TEST(LintL4, SourceMegaSuffixAmbiguityWarnsAndQuotesCard) {
  const LintReport r = lintSource(
      "V1 in 0 10\nR1 in out 1M tol=1%\nR2 out 0 1k tol=1%\n.end\n");
  EXPECT_TRUE(r.ok());
  const auto l4 = r.byRule("L4");
  ASSERT_EQ(l4.size(), 1u);
  EXPECT_EQ(l4.front()->location, "line 2");
  EXPECT_NE(l4.front()->message.find("card: R1 in out 1M tol=1%"),
            std::string::npos);
}

TEST(LintL4, SourceChecksKeyValueOptionValues) {
  const LintReport r =
      lintSource("R1 in 0 1k tol=1%\nR2 in 0 1k tol=1M\n.end\n");
  EXPECT_FALSE(r.byRule("L4").empty());
}

TEST(LintL4, UnparseableCardIsAnErrorCarryingTheCard) {
  const LintReport r = lintSource("V1 in 0 10\nR1 in\n.end\n");
  EXPECT_FALSE(r.ok());
  const auto l4 = r.byRule("L4");
  ASSERT_FALSE(l4.empty());
  EXPECT_EQ(l4.front()->severity, Severity::kError);
  EXPECT_EQ(l4.front()->location, "line 2");
  EXPECT_NE(l4.front()->message.find("card: R1 in"), std::string::npos);
}

// --- renderers, enforcement, counters ---------------------------------------

TEST(LintRender, TextIncludesSeverityRuleAndSummary) {
  LintReport r;
  r.diagnostics.push_back(
      {"L1", Severity::kError, "node a", "broken", "fix it"});
  const std::string text = renderLintReport(r);
  EXPECT_NE(text.find("error [L1] node a: broken"), std::string::npos);
  EXPECT_NE(text.find("fix: fix it"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s)"), std::string::npos);
}

TEST(LintRender, JsonEscapesAndCounts) {
  LintReport r;
  r.diagnostics.push_back(
      {"L4", Severity::kWarning, "line 1", "bad \"card\"\n", ""});
  const std::string json = lintReportJson(r);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  EXPECT_NE(json.find("bad \\\"card\\\"\\n"), std::string::npos);
}

TEST(LintEnforce, ThrowsTypedErrorCarryingTheReport) {
  LintReport r;
  r.diagnostics.push_back({"L1", Severity::kError, "node a", "broken", ""});
  try {
    enforce(r);
    FAIL() << "enforce() did not throw";
  } catch (const LintError& e) {
    EXPECT_EQ(e.report().errors(), 1u);
    EXPECT_NE(std::string(e.what()).find("[L1] node a"), std::string::npos);
  }
}

TEST(LintEnforce, WarningsPassUnlessEscalated) {
  LintReport r;
  r.diagnostics.push_back({"L3", Severity::kWarning, "c", "m", ""});
  EXPECT_NO_THROW(enforce(r));
  EXPECT_THROW(enforce(r, /*warningsAsErrors=*/true), LintError);
}

TEST(LintObs, CountersRecordErrorsAndWarnings) {
  obs::setEnabled(true);
  obs::Counter& errors = obs::counter("lint_errors_total");
  obs::Counter& warnings = obs::counter("lint_warnings_total");
  const auto e0 = errors.value();
  const auto w0 = warnings.value();
  LintReport r;
  r.diagnostics.push_back({"L1", Severity::kError, "a", "m", ""});
  r.diagnostics.push_back({"L3", Severity::kWarning, "b", "m", ""});
  r.diagnostics.push_back({"L3", Severity::kWarning, "c", "m", ""});
  recordObsCounters(r);
  EXPECT_EQ(errors.value(), e0 + 1);
  EXPECT_EQ(warnings.value(), w0 + 2);
  obs::setEnabled(false);
}

}  // namespace
}  // namespace flames::lint
