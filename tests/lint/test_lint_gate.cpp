// Integration tests for the lint enforcement surfaces: the model builder's
// lint-before-build gate, the compile cache's per-unit-type report, and the
// batch service's submit-time rejection.
#include <gtest/gtest.h>

#include <memory>

#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "diagnosis/flames.h"
#include "lint/lint.h"
#include "obs/obs.h"
#include "service/model_cache.h"
#include "service/service.h"

namespace flames {
namespace {

circuit::Netlist healthyDivider() {
  circuit::Netlist net;
  net.addVSource("V1", "in", "0", 10.0);
  net.addResistor("R1", "in", "out", 1e3, 0.01);
  net.addResistor("R2", "out", "0", 1e3, 0.01);
  return net;
}

circuit::Netlist floatingIsland() {
  circuit::Netlist net = healthyDivider();
  net.addResistor("R3", "a", "b", 1e3, 0.01);  // {a, b} never reach ground
  return net;
}

TEST(LintGate, BuildRefusesBrokenNetlistWithTypedError) {
  try {
    (void)constraints::buildDiagnosticModel(floatingIsland());
    FAIL() << "gate did not fire";
  } catch (const lint::LintError& e) {
    EXPECT_GE(e.report().errors(), 1u);
    EXPECT_FALSE(e.report().byRule("L1").empty());
  }
}

TEST(LintGate, GateCanBeDisabled) {
  constraints::ModelBuildOptions opts;
  opts.lintBeforeBuild = false;
  // Without the gate the same netlist fails later and worse: the MNA solve
  // on the floating subcircuit is singular.
  EXPECT_THROW((void)constraints::buildDiagnosticModel(floatingIsland(), opts),
               std::runtime_error);
  try {
    (void)constraints::buildDiagnosticModel(floatingIsland(), opts);
  } catch (const lint::LintError&) {
    FAIL() << "gate fired although disabled";
  } catch (const std::exception&) {
    // expected: the raw solver failure
  }
}

TEST(LintGate, EngineConstructionIsGatedToo) {
  EXPECT_THROW(diagnosis::FlamesEngine engine(floatingIsland()),
               lint::LintError);
}

TEST(LintGate, HealthyNetlistBuildsThroughTheGate) {
  EXPECT_NO_THROW((void)constraints::buildDiagnosticModel(healthyDivider()));
}

TEST(CompiledModelLint, CachesTheReportPerUnitType) {
  auto net = std::make_shared<const circuit::Netlist>(healthyDivider());
  const service::CompiledModel model(net, diagnosis::FlamesOptions{});
  EXPECT_TRUE(model.lintReport().clean())
      << lint::renderLintReport(model.lintReport());
}

TEST(CompiledModelLint, WarningsSurviveIntoTheCachedReport) {
  circuit::Netlist warned = healthyDivider();
  warned.component("R2").relTol = 0.0;  // L3 crisp-nominal warning
  auto net = std::make_shared<const circuit::Netlist>(std::move(warned));
  const service::CompiledModel model(net, diagnosis::FlamesOptions{});
  EXPECT_TRUE(model.lintReport().ok());
  EXPECT_FALSE(model.lintReport().byRule("L3").empty());
}

TEST(CompiledModelLint, RuleTogglesChangeTheCacheKey) {
  const circuit::Netlist net = healthyDivider();
  diagnosis::FlamesOptions a, b;
  b.lint.fuzzyValues = false;
  EXPECT_NE(service::modelCacheKey(net, a), service::modelCacheKey(net, b));
  b = a;
  b.model.lintBeforeBuild = false;
  EXPECT_NE(service::modelCacheKey(net, a), service::modelCacheKey(net, b));
}

TEST(ServiceLintGate, RejectsErrorGradeJobBeforeTheWorkerPool) {
  service::ServiceOptions sopts;
  sopts.workers = 2;
  service::DiagnosisService svc(sopts);

  service::DiagnosisRequest bad;
  bad.netlist = std::make_shared<const circuit::Netlist>(floatingIsland());
  bad.measurements.push_back(service::crispMeasurement("out", 5.0));
  EXPECT_THROW((void)svc.submit(bad), lint::LintError);

  // The rejection happened at intake: nothing was submitted, queued or run,
  // and the model cache never saw the broken netlist.
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.queueDepth, 0u);
  EXPECT_EQ(stats.modelCache.misses, 0u);

  // The same service keeps accepting healthy work.
  service::DiagnosisRequest good;
  good.netlist = std::make_shared<const circuit::Netlist>(healthyDivider());
  good.measurements.push_back(service::crispMeasurement("out", 5.0));
  auto job = svc.submit(good);
  EXPECT_EQ(job->wait().status, service::JobStatus::kDone);
}

TEST(ServiceLintGate, WarningsAsErrorsEscalatesAtSubmit) {
  service::ServiceOptions sopts;
  sopts.workers = 1;
  service::DiagnosisService svc(sopts);

  circuit::Netlist warned = healthyDivider();
  warned.component("R2").relTol = 0.0;  // warning-grade only
  service::DiagnosisRequest req;
  req.netlist = std::make_shared<const circuit::Netlist>(std::move(warned));
  req.measurements.push_back(service::crispMeasurement("out", 5.0));

  auto job = svc.submit(req);  // warnings alone do not block
  EXPECT_EQ(job->wait().status, service::JobStatus::kDone);

  req.options.lint.warningsAsErrors = true;
  EXPECT_THROW((void)svc.submit(req), lint::LintError);
}

TEST(ServiceLintGate, CanBeDisabled) {
  service::ServiceOptions sopts;
  sopts.workers = 1;
  sopts.lintOnSubmit = false;
  service::DiagnosisService svc(sopts);

  service::DiagnosisRequest bad;
  bad.netlist = std::make_shared<const circuit::Netlist>(floatingIsland());
  bad.measurements.push_back(service::crispMeasurement("out", 5.0));
  // Accepted at intake; the builder's own gate then fails the job on a
  // worker instead of throwing at the caller.
  auto job = svc.submit(bad);
  const auto& result = job->wait();
  EXPECT_EQ(result.status, service::JobStatus::kFailed);
  EXPECT_NE(result.error.find("lint failed"), std::string::npos)
      << result.error;
}

TEST(ServiceLintGate, MirrorsCountsIntoObs) {
  obs::setEnabled(true);
  obs::Counter& errors = obs::counter("lint_errors_total");
  const auto e0 = errors.value();

  service::ServiceOptions sopts;
  sopts.workers = 1;
  service::DiagnosisService svc(sopts);
  service::DiagnosisRequest bad;
  bad.netlist = std::make_shared<const circuit::Netlist>(floatingIsland());
  EXPECT_THROW((void)svc.submit(bad), lint::LintError);

  EXPECT_GT(errors.value(), e0);
  obs::setEnabled(false);
}

}  // namespace
}  // namespace flames
