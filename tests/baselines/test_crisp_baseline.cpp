#include "baselines/crisp_diagnosis.h"

#include <gtest/gtest.h>

namespace flames::baselines {
namespace {

using atms::Environment;
using constraints::Model;
using constraints::QuantityId;
using fuzzy::FuzzyInterval;

// A small model with two predictions guarded by different components.
struct Fixture {
  Model model;
  QuantityId x;
  atms::AssumptionId c1, c2;

  Fixture() {
    c1 = model.addAssumption("C1");
    c2 = model.addAssumption("C2");
    x = model.addQuantity("x");
    model.addPrediction(x, FuzzyInterval::about(5.0, 0.5),
                        Environment::of({c1}));
    model.addPrediction(x, FuzzyInterval::about(5.1, 0.5),
                        Environment::of({c2}));
  }
};

TEST(CrispBaseline, QuietOnConsistentMeasurement) {
  Fixture f;
  const auto result =
      diagnoseCrisp(f.model, {{f.x, FuzzyInterval::about(5.0, 0.1)}});
  EXPECT_TRUE(result.propagationCompleted);
  EXPECT_TRUE(result.nogoods.empty());
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_TRUE(result.candidates.front().empty());  // nothing to explain
}

TEST(CrispBaseline, DisjointMeasurementBlamesBoth) {
  Fixture f;
  const auto result =
      diagnoseCrisp(f.model, {{f.x, FuzzyInterval::about(9.0, 0.1)}});
  ASSERT_EQ(result.nogoods.size(), 2u);
  // Candidates: hitting sets of {C1} and {C2} => {C1, C2}.
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates.front().size(), 2u);
}

TEST(CrispBaseline, SoftFaultIsMasked) {
  // Measurement overlapping both predictions: the crisp engine reports
  // nothing, even though the shift is visible — the paper's §4.2 masking
  // argument. (The fuzzy engine flags this same input as a partial
  // conflict; see the integration tests.)
  Fixture f;
  const auto result =
      diagnoseCrisp(f.model, {{f.x, FuzzyInterval::about(5.45, 0.1)}});
  EXPECT_TRUE(result.nogoods.empty());
}

TEST(CrispBaseline, NamesResolveThroughModel) {
  Fixture f;
  const auto result =
      diagnoseCrisp(f.model, {{f.x, FuzzyInterval::about(9.0, 0.1)}});
  for (const auto& ng : result.nogoods) {
    for (const auto& name : ng) {
      EXPECT_TRUE(name == "C1" || name == "C2");
    }
  }
}

}  // namespace
}  // namespace flames::baselines
