// Crash-recovery tests: IoHooks inject a failure at each durability stage
// (mid-WAL-append, mid-snapshot-write, at snapshot rename, at WAL reset)
// and a reopened store must reproduce exactly the state that was durable
// at the instant of the crash — which, because every mutation is logged
// before it is applied, is exactly the in-memory state from before the
// crashing operation (appends) or the full state (compaction stages, which
// never lose events, only defer the snapshot).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "kb/store.h"

namespace flames::kb {
namespace {

namespace fs = std::filesystem;
using diagnosis::Symptom;

class KbCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("flames_kb_crash_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] KbOptions options() const {
    KbOptions ko;
    ko.dir = dir_.string();
    ko.origin = "crash-test";
    return ko;
  }

  /// Options whose sink dies at the first call of `stage`.
  [[nodiscard]] KbOptions crashingAt(std::string stage) const {
    KbOptions ko = options();
    ko.hooks.failAt = [stage = std::move(stage)](std::string_view s) {
      return s == stage;
    };
    return ko;
  }

  fs::path dir_;
};

std::vector<Symptom> sigA() { return {{"V(V1)", 0.5, 1}}; }
std::vector<Symptom> sigB() { return {{"V(V2)", -0.5, -1}}; }

TEST_F(KbCrashTest, CrashMidWalAppendLosesOnlyTheTornRecord) {
  std::string beforeCrash;
  {
    KbStore store(crashingAt("wal_append"));
    // The hook fires on the FIRST append — so build up prior state through
    // a snapshot instead of the log.
    // (compact() itself never appends; seed state via a fresh store.)
    beforeCrash = store.serialize();
    EXPECT_THROW(store.recordSuccess(sigA(), "R2", "short"), KbIoError);
    // The in-memory state was not touched: WAL-first means the mutation is
    // applied only after the log accepts it.
    EXPECT_EQ(store.serialize(), beforeCrash);
  }
  const KbStore reopened(options());
  EXPECT_EQ(reopened.serialize(), beforeCrash);
  EXPECT_TRUE(reopened.stats().walRecoveredTail);  // torn half-record
  EXPECT_EQ(reopened.stats().rules, 0u);

  // The store is fully usable after recovery.
  KbStore store(options());
  store.recordSuccess(sigA(), "R2", "short");
  EXPECT_EQ(store.stats().rules, 1u);
}

TEST_F(KbCrashTest, CrashMidWalAppendAfterExistingState) {
  {
    KbStore store(options());
    store.recordSuccess(sigA(), "R2", "short");
    store.recordSuccess(sigB(), "R3", "open");
  }
  std::string beforeCrash;
  {
    KbStore store(crashingAt("wal_append"));
    beforeCrash = store.serialize();
    EXPECT_THROW(store.recordFailure("R2", "short"), KbIoError);
    EXPECT_EQ(store.serialize(), beforeCrash);
  }
  const KbStore reopened(options());
  EXPECT_EQ(reopened.serialize(), beforeCrash);
  EXPECT_EQ(reopened.stats().rules, 2u);
}

TEST_F(KbCrashTest, CrashMidSnapshotWriteKeepsWalGeneration) {
  std::string live;
  {
    KbStore store(crashingAt("snapshot_write"));
    store.recordSuccess(sigA(), "R2", "short");
    store.recordSuccess(sigB(), "R3", "open");
    live = store.serialize();
    EXPECT_THROW(store.compact(), KbIoError);
    // Compaction is all-or-nothing: the in-memory state is unaffected.
    EXPECT_EQ(store.serialize(), live);
  }
  // The half-written .tmp is discarded; the WAL still holds every event.
  const KbStore reopened(options());
  EXPECT_EQ(reopened.serialize(), live);
  EXPECT_EQ(reopened.stats().walReplayed, 2u);
  EXPECT_FALSE(fs::exists(dir_ / "snapshot.kb.tmp"));
}

TEST_F(KbCrashTest, CrashAtSnapshotRenameKeepsWalGeneration) {
  std::string live;
  {
    KbStore store(crashingAt("snapshot_rename"));
    store.recordSuccess(sigA(), "R2", "short");
    live = store.serialize();
    EXPECT_THROW(store.compact(), KbIoError);
  }
  const KbStore reopened(options());
  EXPECT_EQ(reopened.serialize(), live);
  EXPECT_EQ(reopened.stats().walReplayed, 1u);
}

TEST_F(KbCrashTest, CrashAtWalResetDiscardsSupersededLog) {
  // The narrowest window: the new snapshot is renamed into place but the
  // old-generation WAL was not reset. open() must detect the binding
  // mismatch and discard the log — its events already live in the snapshot.
  {
    KbStore init(options());  // lay down the WAL generation without the hook
  }                           // (a fresh dir resets the WAL during open())
  std::string live;
  {
    KbStore store(crashingAt("wal_reset"));
    store.recordSuccess(sigA(), "R2", "short");
    store.recordSuccess(sigB(), "R3", "open");
    live = store.serialize();
    EXPECT_THROW(store.compact(), KbIoError);
  }
  ASSERT_TRUE(fs::exists(dir_ / "snapshot.kb"));
  const KbStore reopened(options());
  EXPECT_EQ(reopened.serialize(), live);
  EXPECT_EQ(reopened.stats().walReplayed, 0u);  // events came from snapshot
  EXPECT_TRUE(reopened.stats().walRecoveredTail);

  // Nothing was double-applied: each rule has exactly one confirmation.
  for (const diagnosis::SymptomRule& r : reopened.materialized().rules()) {
    EXPECT_EQ(r.confirmations, 1);
  }
}

TEST_F(KbCrashTest, RepeatedCrashesNeverLoseDurableState) {
  // A store that crashes at every stage in sequence, with reopen+retry in
  // between, still converges to the full state.
  {
    KbStore store(crashingAt("wal_append"));
    EXPECT_THROW(store.recordSuccess(sigA(), "R2", "short"), KbIoError);
  }
  {
    KbStore store(options());
    store.recordSuccess(sigA(), "R2", "short");  // retry succeeds
  }
  {
    KbStore store(crashingAt("snapshot_write"));
    EXPECT_THROW(store.compact(), KbIoError);
  }
  {
    KbStore store(crashingAt("wal_reset"));
    EXPECT_THROW(store.compact(), KbIoError);
  }
  const KbStore final_(options());
  EXPECT_EQ(final_.stats().rules, 1u);
  EXPECT_EQ(final_.materialized().rules().front().component, "R2");
  EXPECT_EQ(final_.materialized().rules().front().confirmations, 1);
}

}  // namespace
}  // namespace flames::kb
