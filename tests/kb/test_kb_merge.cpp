// Metamorphic properties of the KB merge operator. serialize() is the
// canonical form, so every algebraic law is checked as byte equality:
//
//   commutativity   merge(A,B) == merge(B,A)
//   associativity   merge(merge(A,B),C) == merge(A,merge(B,C))
//   idempotence     merge(A,A) == A ; re-merging a peer changes nothing
//   decay commutes  decay(merge(A,B)) == merge(decay(A),B)   (decay only
//                   touches the local origin's slots; merge never does)
//
// The stores are driven by seeded pseudo-random event streams so the laws
// are exercised over many shapes (reinforced rules, evictions, tombstone
// resurrections), not one hand-picked state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "kb/store.h"

namespace flames::kb {
namespace {

using diagnosis::Symptom;

/// Deterministic little generator (no std::random — identical everywhere).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint32_t next(std::uint32_t bound) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>((state_ >> 33) % bound);
  }

 private:
  std::uint64_t state_;
};

const std::vector<std::string> kComponents = {"R1", "R2", "R3", "Q1", "Q2"};
const std::vector<std::string> kModes = {"short", "open", "drift"};

std::vector<Symptom> randomSignature(Rng& rng) {
  static const std::vector<std::string> quantities = {"V(V1)", "V(V2)",
                                                      "V(Vs)", "V(out)"};
  std::vector<Symptom> sig;
  const std::uint32_t n = 1 + rng.next(3);
  for (std::uint32_t i = 0; i < n && i < quantities.size(); ++i) {
    Symptom s;
    s.quantity = quantities[(rng.next(4) + i) % quantities.size()];
    s.signedDc = (static_cast<double>(rng.next(9)) - 4.0) / 4.0;
    s.direction = s.signedDc < 0 ? -1 : (s.signedDc > 0 ? 1 : 0);
    // Distinct quantities only (duplicate keys would be one symptom).
    bool dup = false;
    for (const Symptom& prev : sig) dup = dup || prev.quantity == s.quantity;
    if (!dup) sig.push_back(std::move(s));
  }
  return sig;
}

/// Drives `events` pseudo-random local events into a fresh store.
KbStore makeStore(const std::string& origin, std::uint64_t seed,
                  std::size_t events) {
  KbOptions ko;
  ko.origin = origin;
  // Tight horizon so the streams' decay events actually age rules out
  // (the default 64-event horizon would make every decay a no-op here).
  ko.decay.staleAfterEvents = 6;
  ko.decay.horizonPerConfirmation = 2;
  KbStore store(ko);
  Rng rng(seed);
  for (std::size_t i = 0; i < events; ++i) {
    switch (rng.next(10)) {
      case 0:
        store.decay();
        break;
      case 1:
      case 2:
        store.recordFailure(kComponents[rng.next(5)], kModes[rng.next(3)]);
        break;
      default:
        store.recordSuccess(randomSignature(rng), kComponents[rng.next(5)],
                            kModes[rng.next(3)]);
        break;
    }
  }
  return store;
}

/// merge of payloads into a neutral (eventless) store — a value-level merge
/// that leaves the operands untouched.
std::string mergedState(const std::vector<std::string>& payloads) {
  KbOptions ko;
  ko.origin = "merger";
  KbStore m(ko);
  for (const std::string& p : payloads) m.mergeState(p);
  return m.serialize();
}

TEST(KbMerge, CommutativityOverRandomStreams) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const KbStore a = makeStore("site-a", seed, 40);
    const KbStore b = makeStore("site-b", seed + 100, 40);
    EXPECT_EQ(mergedState({a.serialize(), b.serialize()}),
              mergedState({b.serialize(), a.serialize()}))
        << "seed " << seed;
  }
}

TEST(KbMerge, Associativity) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string a = makeStore("site-a", seed, 30).serialize();
    const std::string b = makeStore("site-b", seed + 100, 30).serialize();
    const std::string c = makeStore("site-c", seed + 200, 30).serialize();
    EXPECT_EQ(mergedState({mergedState({a, b}), c}),
              mergedState({a, mergedState({b, c})}))
        << "seed " << seed;
  }
}

TEST(KbMerge, Idempotence) {
  const KbStore a = makeStore("site-a", 7, 50);
  const std::string payload = a.serialize();
  EXPECT_EQ(mergedState({payload}), mergedState({payload, payload}));

  // Merging a peer twice into a live store is also a no-op the second time.
  KbStore b = makeStore("site-b", 8, 20);
  b.mergeState(payload);
  const std::string once = b.serialize();
  b.mergeState(payload);
  EXPECT_EQ(b.serialize(), once);
}

TEST(KbMerge, MergeIsAnUpperBound) {
  // Every rule of each operand is present in the merge (join semilattice:
  // merge only ever adds or upgrades slots).
  const KbStore a = makeStore("site-a", 3, 40);
  KbStore b = makeStore("site-b", 4, 40);
  const std::size_t bRules = b.stats().rules;
  b.mergeFrom(a);
  EXPECT_GE(b.stats().rules, bRules);
  EXPECT_GE(b.stats().rules, a.stats().rules);
  EXPECT_EQ(b.stats().origins, 2u);
}

TEST(KbMerge, DecayCommutesWithMerge) {
  // decay touches only the local origin's slots and merge never touches
  // them, so the two operations commute. (The peer's payload is fixed; its
  // own decay runs on the peer instance.)
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string peer = makeStore("site-b", seed + 100, 40).serialize();

    KbStore mergeThenDecay = makeStore("site-a", seed, 40);
    mergeThenDecay.mergeState(peer);
    mergeThenDecay.decay();

    KbStore decayThenMerge = makeStore("site-a", seed, 40);
    decayThenMerge.decay();
    decayThenMerge.mergeState(peer);

    EXPECT_EQ(mergeThenDecay.serialize(), decayThenMerge.serialize())
        << "seed " << seed;
  }
}

TEST(KbMerge, EvictionsSurviveMerges) {
  // A tombstone must win against an older live copy of the same slot: a
  // stale peer snapshot cannot resurrect rules the owner has retired.
  KbOptions ko;
  ko.origin = "site-a";
  KbStore a(ko);
  const std::vector<Symptom> sig = {{"V(V1)", 0.5, 1}};
  a.recordSuccess(sig, "R2", "short");
  const std::string staleCopy = a.serialize();  // peer saw the rule alive
  for (int i = 0; i < 12; ++i) a.recordFailure("R2", "short");
  ASSERT_EQ(a.stats().liveRules, 0u);

  a.mergeState(staleCopy);
  EXPECT_EQ(a.stats().liveRules, 0u) << "stale merge resurrected a tombstone";
  EXPECT_EQ(a.stats().tombstoneSlots, 1u);
}

TEST(KbMerge, FusionCombinesCertaintiesAcrossOrigins) {
  // Two origins confirm the same fault signature; the fused view surfaces
  // one rule whose certainty is the possibilistic max of the two slots.
  const std::vector<Symptom> sig = {{"V(V1)", 0.5, 1}};
  KbOptions ka;
  ka.origin = "site-a";
  KbStore a(ka);
  a.recordSuccess(sig, "R2", "short");
  a.recordSuccess(sig, "R2", "short");  // reinforce: 0.5 -> 0.65

  KbOptions kb_;
  kb_.origin = "site-b";
  KbStore b(kb_);
  b.recordSuccess(sig, "R2", "short");  // 0.5

  b.mergeFrom(a);
  ASSERT_EQ(b.materialized().size(), 1u);
  const diagnosis::SymptomRule& fused = b.materialized().rules().front();
  EXPECT_DOUBLE_EQ(fused.certainty, 0.65);  // kMax fusion
  EXPECT_EQ(fused.confirmations, 3);        // confirmations add up

  KbOptions kmin;
  kmin.origin = "site-c";
  kmin.fusion = FusionPolicy::kMin;
  KbStore c(kmin);
  c.mergeState(a.serialize());
  c.mergeState(b.serialize());
  ASSERT_EQ(c.materialized().size(), 1u);
  EXPECT_DOUBLE_EQ(c.materialized().rules().front().certainty, 0.5);
}

}  // namespace
}  // namespace flames::kb
