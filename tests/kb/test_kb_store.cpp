// KbStore unit tests: learning semantics of the wrapped ExperienceBase,
// WAL+snapshot durability round-trips, recovery of torn logs, origin
// identity adoption, auto-compaction, seeding and stats.
#include "kb/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace flames::kb {
namespace {

namespace fs = std::filesystem;
using diagnosis::Symptom;

/// Fresh scratch directory per test (removed by the fixture).
class KbStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("flames_kb_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] KbOptions durableOptions(const std::string& origin = "t") {
    KbOptions ko;
    ko.dir = dir_.string();
    ko.origin = origin;
    return ko;
  }

  fs::path dir_;
};

std::vector<Symptom> sigA() { return {{"V(V1)", 0.5, 1}, {"V(V2)", -0.5, -1}}; }
std::vector<Symptom> sigB() { return {{"V(Vs)", -1.0, -1}}; }

TEST_F(KbStoreTest, InMemoryLearningMirrorsExperienceBase) {
  KbStore store;  // no dir: pure in-memory
  store.recordSuccess(sigA(), "R2", "short");
  store.recordSuccess(sigA(), "R2", "short");
  store.recordSuccess(sigB(), "R3", "open");

  const diagnosis::ExperienceBase& view = store.materialized();
  ASSERT_EQ(view.size(), 2u);

  diagnosis::ExperienceBase reference;
  reference.recordSuccess(sigA(), "R2", "short");
  reference.recordSuccess(sigA(), "R2", "short");
  reference.recordSuccess(sigB(), "R3", "open");

  const auto hints = store.match(sigA());
  const auto expected = reference.match(sigA());
  ASSERT_EQ(hints.size(), expected.size());
  for (std::size_t i = 0; i < hints.size(); ++i) {
    EXPECT_EQ(hints[i].component, expected[i].component);
    EXPECT_DOUBLE_EQ(hints[i].score, expected[i].score);
    EXPECT_DOUBLE_EQ(hints[i].certainty, expected[i].certainty);
  }
}

TEST_F(KbStoreTest, WalOnlyRoundTrip) {
  std::string live;
  {
    KbStore store(durableOptions());
    store.recordSuccess(sigA(), "R2", "short");
    store.recordFailure("R2", "short");
    store.decay();
    live = store.serialize();
  }
  const KbStore reopened(durableOptions());
  EXPECT_EQ(reopened.serialize(), live);
  EXPECT_EQ(reopened.stats().walReplayed, 3u);
  EXPECT_FALSE(reopened.stats().walRecoveredTail);
}

TEST_F(KbStoreTest, SnapshotPlusWalTailRoundTrip) {
  std::string live;
  {
    KbStore store(durableOptions());
    store.recordSuccess(sigA(), "R2", "short");
    store.compact();
    store.recordSuccess(sigB(), "R3", "open");  // WAL tail over the snapshot
    live = store.serialize();
  }
  const KbStore reopened(durableOptions());
  EXPECT_EQ(reopened.serialize(), live);
  EXPECT_EQ(reopened.stats().walReplayed, 1u);
  EXPECT_EQ(reopened.stats().rules, 2u);
}

TEST_F(KbStoreTest, ReopenAdoptsDurableOrigin) {
  {
    KbStore store(durableOptions("site-a"));
    store.recordSuccess(sigA(), "R2", "short");
  }
  // A different requested origin must NOT re-attribute site-a's history:
  // the canonical state is independent of who opens the store.
  std::string viaB;
  {
    const KbStore store(durableOptions("site-b"));
    viaB = store.serialize();
    EXPECT_EQ(store.stats().localTick, 1u);  // stats follow the adopted id
  }
  const KbStore store(durableOptions("site-a"));
  EXPECT_EQ(store.serialize(), viaB);
  EXPECT_NE(viaB.find("tick site-a 1"), std::string::npos);
  EXPECT_EQ(viaB.find("site-b"), std::string::npos);
}

TEST_F(KbStoreTest, InvalidOriginRejected) {
  EXPECT_THROW(KbStore((KbOptions{.origin = ""})), KbError);
  EXPECT_THROW(KbStore((KbOptions{.origin = "a b"})), KbError);
  EXPECT_THROW(KbStore((KbOptions{.origin = "a\tb"})), KbError);
  EXPECT_THROW(KbStore((KbOptions{.origin = "a\nb"})), KbError);
}

TEST_F(KbStoreTest, TornWalTailIsTruncatedOnOpen) {
  {
    KbStore store(durableOptions());
    store.recordSuccess(sigA(), "R2", "short");
    store.recordSuccess(sigB(), "R3", "open");
  }
  const fs::path wal = dir_ / "wal.log";
  // Append half a record — the shape an append-crash leaves behind.
  {
    std::ofstream os(wal, std::ios::binary | std::ios::app);
    os << "ev 3 failure R2 sh";
  }
  std::string afterRecovery;
  {
    const KbStore store(durableOptions());
    EXPECT_TRUE(store.stats().walRecoveredTail);
    EXPECT_EQ(store.stats().walReplayed, 2u);
    EXPECT_EQ(store.stats().rules, 2u);
    afterRecovery = store.serialize();
  }
  // Recovery truncated the file: the next open is clean.
  const KbStore store(durableOptions());
  EXPECT_FALSE(store.stats().walRecoveredTail);
  EXPECT_EQ(store.serialize(), afterRecovery);
}

TEST_F(KbStoreTest, StaleWalGenerationIsDiscarded) {
  {
    KbStore store(durableOptions());
    store.recordSuccess(sigA(), "R2", "short");
    store.compact();
  }
  // Simulate the crash window between snapshot rename and WAL reset: bind
  // the log to a snapshot generation that no longer exists.
  {
    std::ofstream os(dir_ / "wal.log", std::ios::binary | std::ios::trunc);
    os << renderWalHeader("t", 0x12345678u, true);
    WalEvent ev;
    ev.kind = WalEventKind::kFailure;
    ev.tick = 2;
    ev.component = "R2";
    ev.mode = "short";
    os << renderWalEvent(ev);
  }
  const KbStore store(durableOptions());
  EXPECT_TRUE(store.stats().walRecoveredTail);
  EXPECT_EQ(store.stats().walReplayed, 0u);
  // The stale failure event was NOT applied.
  EXPECT_EQ(store.materialized().rules().front().confirmations, 1);
}

TEST_F(KbStoreTest, CorruptSnapshotIsFatal) {
  {
    KbStore store(durableOptions());
    store.recordSuccess(sigA(), "R2", "short");
    store.compact();
  }
  {
    std::ofstream os(dir_ / "snapshot.kb", std::ios::binary | std::ios::trunc);
    os << "flames-kb-snapshot v1\nticks zzz\n";
  }
  // Silently starting fresh would clobber learned experience on the next
  // compaction; the caller must decide.
  EXPECT_THROW(KbStore{durableOptions()}, KbError);
}

TEST_F(KbStoreTest, AutoCompactionAtConfiguredCadence) {
  KbOptions ko = durableOptions();
  ko.snapshotEveryEvents = 3;
  KbStore store(ko);
  store.recordSuccess(sigA(), "R2", "short");
  store.recordSuccess(sigB(), "R3", "open");
  EXPECT_EQ(store.stats().compactions, 0u);
  store.decay();  // third event triggers the snapshot
  EXPECT_EQ(store.stats().compactions, 1u);
  EXPECT_EQ(store.stats().walEvents, 0u);
  EXPECT_TRUE(fs::exists(dir_ / "snapshot.kb"));

  const KbStore reopened(ko);
  EXPECT_EQ(reopened.serialize(), store.serialize());
  EXPECT_EQ(reopened.stats().walReplayed, 0u);  // all state in the snapshot
}

TEST_F(KbStoreTest, FailureEvictionTombstones) {
  KbStore store;
  store.recordSuccess(sigA(), "R2", "short");
  // Repeated failures decay certainty below the eviction floor.
  for (int i = 0; i < 12; ++i) store.recordFailure("R2", "short");
  EXPECT_EQ(store.stats().liveRules, 0u);
  EXPECT_EQ(store.stats().tombstoneSlots, 1u);
  EXPECT_GE(store.stats().evictions, 1u);
  EXPECT_TRUE(store.materialized().rules().empty());

  // A later confirmation resurrects the rule (history of failures kept).
  store.recordSuccess(sigA(), "R2", "short");
  EXPECT_EQ(store.stats().liveRules, 1u);
  EXPECT_EQ(store.stats().tombstoneSlots, 0u);
}

TEST_F(KbStoreTest, DecayOnlyTouchesStaleRules) {
  KbOptions ko;
  ko.decay.staleAfterEvents = 4;
  ko.decay.horizonPerConfirmation = 0;
  KbStore store(ko);
  store.recordSuccess(sigA(), "R2", "short");
  const double before = store.materialized().rules().front().certainty;
  store.decay();  // tick 2, age 1 < 4: nothing happens
  EXPECT_DOUBLE_EQ(store.materialized().rules().front().certainty, before);
  store.decay();
  store.decay();
  store.decay();  // tick 5, age 4 >= 4: decays
  EXPECT_LT(store.materialized().rules().front().certainty, before);
}

TEST_F(KbStoreTest, SeedReplacesContentDurably) {
  diagnosis::ExperienceBase base;
  base.recordSuccess(sigB(), "R9", "open");
  std::string live;
  {
    KbStore store(durableOptions());
    store.recordSuccess(sigA(), "R2", "short");
    store.seed(base);
    ASSERT_EQ(store.materialized().size(), 1u);
    EXPECT_EQ(store.materialized().rules().front().component, "R9");
    live = store.serialize();
  }
  const KbStore reopened(durableOptions());
  EXPECT_EQ(reopened.serialize(), live);
  EXPECT_EQ(reopened.materialized().rules().front().component, "R9");
}

TEST_F(KbStoreTest, SerializeIsCanonical) {
  // Same logical content reached through different event orders must render
  // identically (rules are keyed, origins sorted).
  KbStore a;
  a.recordSuccess(sigA(), "R2", "short");
  a.recordSuccess(sigB(), "R3", "open");
  KbStore b;
  b.recordSuccess(sigB(), "R3", "open");
  b.recordSuccess(sigA(), "R2", "short");
  // Ticks differ per rule (different order), so full states differ — but
  // rule ordering in the payload is canonical.
  const std::string sa = a.serialize();
  EXPECT_LT(sa.find("rule R2"), sa.find("rule R3"));
  const std::string sb = b.serialize();
  EXPECT_LT(sb.find("rule R2"), sb.find("rule R3"));
}

TEST_F(KbStoreTest, EmptySignatureIsIgnored) {
  KbStore store(durableOptions());
  store.recordSuccess({}, "R2", "short");
  EXPECT_EQ(store.stats().rules, 0u);
  EXPECT_EQ(store.stats().walEvents, 0u);
}

}  // namespace
}  // namespace flames::kb
