// Unit tests for the KB write-ahead log primitives (src/kb/wal.h): CRC,
// record rendering/parsing, header origin + snapshot binding, and the
// recovery classification of every torn-tail shape readWal must survive.
#include "kb/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flames::kb {
namespace {

WalEvent successEvent(std::uint64_t tick) {
  WalEvent ev;
  ev.kind = WalEventKind::kSuccess;
  ev.tick = tick;
  ev.component = "R2";
  ev.mode = "short";
  ev.symptoms = {{"V(V1)", 0.25, 1}, {"V(Vs)", -0.75, -1}};
  return ev;
}

std::string walImage(const std::vector<WalEvent>& events) {
  std::string image = renderWalHeader("tester", 0, false);
  for (const WalEvent& ev : events) image += renderWalEvent(ev);
  return image;
}

TEST(KbWal, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(KbWal, FormatDoubleRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, -0.0, 1e-300, 123456.789}) {
    EXPECT_EQ(std::stod(formatDouble(v)), v);
  }
}

TEST(KbWal, HeaderRoundTrip) {
  const std::string fresh = renderWalHeader("site-a", 0, false);
  WalReadResult r = readWal(fresh);
  EXPECT_TRUE(r.headerOk);
  EXPECT_EQ(r.origin, "site-a");
  EXPECT_FALSE(r.boundToSnapshot);
  EXPECT_TRUE(r.cleanTail);
  EXPECT_TRUE(r.events.empty());

  const std::string bound = renderWalHeader("site-b", 0xDEADBEEFu, true);
  r = readWal(bound);
  EXPECT_TRUE(r.headerOk);
  EXPECT_EQ(r.origin, "site-b");
  EXPECT_TRUE(r.boundToSnapshot);
  EXPECT_EQ(r.snapshotCrc, 0xDEADBEEFu);
}

TEST(KbWal, MalformedHeaderRejectsWholeLog) {
  EXPECT_FALSE(readWal("").headerOk);
  EXPECT_FALSE(readWal("flames-kb-wal v1 snap none\n").headerOk);  // no origin
  EXPECT_FALSE(readWal("flames-kb-wal v1 origin  snap none\n").headerOk);
  EXPECT_FALSE(readWal("flames-kb-wal v1 origin x snap zz\n").headerOk);
  EXPECT_FALSE(readWal("something else entirely\n").headerOk);
  // No trailing newline: the header itself may be the torn write.
  EXPECT_FALSE(readWal("flames-kb-wal v1 origin x snap none").headerOk);
}

TEST(KbWal, EventRoundTripAllKinds) {
  WalEvent failure;
  failure.kind = WalEventKind::kFailure;
  failure.tick = 2;
  failure.component = "R3";
  failure.mode = "open";

  WalEvent decay;
  decay.kind = WalEventKind::kDecay;
  decay.tick = 3;

  WalEvent restore;
  restore.kind = WalEventKind::kRestore;
  restore.tick = 4;
  restore.component = "Q1";
  restore.mode = "saturated";
  restore.certainty = 0.65;
  restore.confirmations = 7;
  restore.failures = 2;
  restore.symptoms = {{"V(V2)", 0.125, 1}};

  const WalReadResult r =
      readWal(walImage({successEvent(1), failure, decay, restore}));
  ASSERT_TRUE(r.headerOk);
  EXPECT_TRUE(r.cleanTail);
  ASSERT_EQ(r.events.size(), 4u);

  const WalEvent& s = r.events[0];
  EXPECT_EQ(s.kind, WalEventKind::kSuccess);
  EXPECT_EQ(s.tick, 1u);
  EXPECT_EQ(s.component, "R2");
  EXPECT_EQ(s.mode, "short");
  ASSERT_EQ(s.symptoms.size(), 2u);
  EXPECT_EQ(s.symptoms[0].quantity, "V(V1)");
  EXPECT_EQ(s.symptoms[0].signedDc, 0.25);
  EXPECT_EQ(s.symptoms[0].direction, 1);
  EXPECT_EQ(s.symptoms[1].quantity, "V(Vs)");
  EXPECT_EQ(s.symptoms[1].signedDc, -0.75);
  EXPECT_EQ(s.symptoms[1].direction, -1);

  EXPECT_EQ(r.events[1].kind, WalEventKind::kFailure);
  EXPECT_EQ(r.events[1].component, "R3");
  EXPECT_EQ(r.events[2].kind, WalEventKind::kDecay);

  const WalEvent& re = r.events[3];
  EXPECT_EQ(re.kind, WalEventKind::kRestore);
  EXPECT_EQ(re.certainty, 0.65);
  EXPECT_EQ(re.confirmations, 7u);
  EXPECT_EQ(re.failures, 2u);
  ASSERT_EQ(re.symptoms.size(), 1u);
}

TEST(KbWal, TruncatedRecordStopsAtGoodPrefix) {
  const std::string good = walImage({successEvent(1)});
  const std::string torn = good + renderWalEvent(successEvent(2)).substr(0, 9);
  const WalReadResult r = readWal(torn);
  ASSERT_TRUE(r.headerOk);
  EXPECT_FALSE(r.cleanTail);
  EXPECT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.goodBytes, good.size());
  EXPECT_NE(r.tailError.find("truncated"), std::string::npos);
}

TEST(KbWal, ChecksumFlipRejectsRecord) {
  std::string image = walImage({successEvent(1)});
  // Corrupt one payload byte; the stored CRC no longer matches.
  image[image.find("R2")] = 'X';
  const WalReadResult r = readWal(image);
  ASSERT_TRUE(r.headerOk);
  EXPECT_FALSE(r.cleanTail);
  EXPECT_TRUE(r.events.empty());
  EXPECT_NE(r.tailError.find("checksum"), std::string::npos);
}

TEST(KbWal, RecordWithoutChecksumRejected) {
  const std::string image =
      renderWalHeader("t", 0, false) + "ev 1 decay\n";
  const WalReadResult r = readWal(image);
  ASSERT_TRUE(r.headerOk);
  EXPECT_FALSE(r.cleanTail);
  EXPECT_NE(r.tailError.find("checksum"), std::string::npos);
}

TEST(KbWal, TickSequenceBreakRejectsTail) {
  const WalReadResult r =
      readWal(walImage({successEvent(1), successEvent(5)}));
  ASSERT_TRUE(r.headerOk);
  EXPECT_FALSE(r.cleanTail);
  EXPECT_EQ(r.events.size(), 1u);
  EXPECT_NE(r.tailError.find("tick"), std::string::npos);
}

TEST(KbWal, FirstTickMayContinueACompactedClock) {
  // After compaction the log restarts empty but the store's clock does not:
  // the first record legitimately carries any tick > 0.
  const WalReadResult r =
      readWal(walImage({successEvent(41), successEvent(42)}));
  ASSERT_TRUE(r.headerOk);
  EXPECT_TRUE(r.cleanTail);
  EXPECT_EQ(r.events.size(), 2u);
}

TEST(KbWal, GoodBytesTracksAcceptedRecords) {
  const std::string header = renderWalHeader("t", 0, false);
  const std::string e1 = renderWalEvent(successEvent(1));
  const std::string e2 = renderWalEvent(successEvent(2));
  const WalReadResult r = readWal(header + e1 + e2);
  EXPECT_TRUE(r.cleanTail);
  EXPECT_EQ(r.goodBytes, header.size() + e1.size() + e2.size());
  EXPECT_EQ(r.events[0].endOffset, header.size() + e1.size());
  EXPECT_EQ(r.events[1].endOffset, header.size() + e1.size() + e2.size());
}

TEST(KbWal, TrailingGarbageAfterChecksumRejected) {
  std::string line = renderWalEvent(successEvent(1));
  // Splice extra payload before the CRC marker: body no longer matches.
  const std::string image = renderWalHeader("t", 0, false) +
                            line.insert(line.find(" crc="), " extra");
  const WalReadResult r = readWal(image);
  EXPECT_FALSE(r.cleanTail);
  EXPECT_TRUE(r.events.empty());
}

}  // namespace
}  // namespace flames::kb
