// Fleet convergence: two DiagnosisService instances, each backed by its own
// durable KB directory and origin, learn from disjoint scenario streams and
// then merge from each other. Because the merge is a join over per-origin
// versioned slots and serialize() is canonical, both instances must end
// with byte-identical exported state AND byte-identical snapshot files on
// disk — regardless of which instance merges first.
//
// The smoke test runs a small stream. The soak-scale variant (hundreds of
// confirmations, both merge orders) is gated behind FLAMES_KB_SOAK=1 and
// carries the nightly `soak` ctest label via its own registration; when the
// states diverge it dumps both exports under FLAMES_KB_DUMP_DIR (or the
// test temp dir) for offline diffing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "circuit/fault.h"
#include "kb/store.h"
#include "service/service.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace flames {
namespace {

namespace fs = std::filesystem;

std::string readFileBytes(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void dumpDivergence(const std::string& label, const std::string& a,
                    const std::string& b) {
  const char* env = std::getenv("FLAMES_KB_DUMP_DIR");
  const fs::path dir = env != nullptr ? fs::path(env)
                                      : fs::path(::testing::TempDir());
  std::error_code ec;
  fs::create_directories(dir, ec);
  std::ofstream(dir / (label + "_a.kb")) << a;
  std::ofstream(dir / (label + "_b.kb")) << b;
  ADD_FAILURE() << label << ": diverged KB states dumped to " << dir;
}

/// One fleet instance: a service with a durable KB, fed `jobs` scenarios
/// from `seed` over a shared ladder topology, confirming every detected
/// fault against the generator's ground truth.
class Instance {
 public:
  Instance(fs::path dir, const std::string& origin)
      : dir_(std::move(dir)) {
    fs::remove_all(dir_);
    service::ServiceOptions sopts;
    sopts.workers = 1;
    sopts.kb.dir = dir_.string();
    sopts.kb.origin = origin;
    svc_ = std::make_unique<service::DiagnosisService>(sopts);
  }
  ~Instance() {
    svc_.reset();
    fs::remove_all(dir_);
  }

  void learn(std::uint32_t seed, std::size_t jobs) {
    const auto net = std::make_shared<const circuit::Netlist>(
        workload::resistorLadder(3));
    const auto probes = workload::tapsOf(*net, "t");
    const auto traffic =
        workload::synthesizeTraffic(*net, probes, jobs, seed, 0.0);
    for (const auto& item : traffic) {
      service::DiagnosisRequest req;
      req.netlist = net;
      for (const auto& r : item.readings) {
        req.measurements.push_back(service::crispMeasurement(r.node, r.volts));
      }
      const service::JobHandle job = svc_->submit(req);
      const service::JobResult& result = job->wait();
      if (result.status != service::JobStatus::kDone ||
          !result.report.faultDetected() ||
          item.scenario.faults.size() != 1) {
        continue;
      }
      const circuit::Fault& f = item.scenario.faults.front();
      svc_->confirm(result.report, f.component,
                    std::string(circuit::faultKindName(f.kind)));
    }
  }

  [[nodiscard]] service::DiagnosisService& service() { return *svc_; }
  [[nodiscard]] std::string exportState() const {
    return svc_->exportExperienceState();
  }
  [[nodiscard]] std::string snapshotBytes() const {
    return readFileBytes(dir_ / "snapshot.kb");
  }

 private:
  fs::path dir_;
  std::unique_ptr<service::DiagnosisService> svc_;
};

void runConvergence(const std::string& label, std::size_t jobs,
                    bool swapMergeOrder) {
  const fs::path base = fs::path(::testing::TempDir()) / ("flames_" + label);
  Instance a(base / "site_a", "site-a");
  Instance b(base / "site_b", "site-b");
  a.learn(101, jobs);
  b.learn(202, jobs);  // disjoint stream

  ASSERT_NE(a.exportState(), b.exportState());  // they really learned apart

  if (swapMergeOrder) {
    b.service().mergeExperienceFrom(a.service());
    a.service().mergeExperienceFrom(b.service());
  } else {
    a.service().mergeExperienceFrom(b.service());
    b.service().mergeExperienceFrom(a.service());
  }

  const std::string ea = a.exportState();
  const std::string eb = b.exportState();
  if (ea != eb) dumpDivergence(label + "_export", ea, eb);

  // The durable artifacts converge too: merging compacts, so both snapshot
  // files hold the canonical merged state.
  const std::string sa = a.snapshotBytes();
  const std::string sb = b.snapshotBytes();
  ASSERT_FALSE(sa.empty());
  if (sa != sb) dumpDivergence(label + "_snapshot", sa, sb);
  EXPECT_EQ(sa, ea);  // snapshot == canonical serialization
}

TEST(KbConvergence, TwoServicesConvergeByteIdentical) {
  runConvergence("kb_conv_smoke", 6, false);
}

TEST(KbConvergence, MergeOrderDoesNotMatter) {
  runConvergence("kb_conv_order", 6, true);
}

TEST(KbConvergence, SoakScaleConvergence) {
  if (std::getenv("FLAMES_KB_SOAK") == nullptr) {
    GTEST_SKIP() << "set FLAMES_KB_SOAK=1 (nightly soak) to run";
  }
  runConvergence("kb_conv_soak", 60, false);
  runConvergence("kb_conv_soak_swapped", 60, true);
}

}  // namespace
}  // namespace flames
