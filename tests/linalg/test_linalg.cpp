#include <gtest/gtest.h>

#include <random>

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace flames::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 4.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix id = Matrix::identity(3);
  const Vector x{1.0, -2.0, 3.0};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(Matrix, AddAtAccumulates) {
  Matrix m(2, 2);
  m.addAt(0, 0, 1.5);
  m.addAt(0, 0, 2.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
}

TEST(Matrix, MultiplySizeMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, Norms) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(normInf({-7.0, 2.0}), 7.0);
  EXPECT_EQ(subtract({3.0, 4.0}, {1.0, 1.0}), (Vector{2.0, 3.0}));
  EXPECT_THROW(subtract({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Lu, Solves2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = solveLinear(a, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_FALSE(solveLinear(a, {1.0, 2.0}).has_value());
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve({1.0, 2.0}), std::logic_error);
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = solveLinear(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  EXPECT_NEAR(LuDecomposition(a).determinant(), 5.0, 1e-12);
}

class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, SolveResidualIsTiny) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = u(rng);
    a(r, r) += 10.0;  // diagonally dominant => well conditioned
  }
  Vector b(n);
  for (double& v : b) v = u(rng);
  const auto x = solveLinear(a, b);
  ASSERT_TRUE(x.has_value());
  const Vector r = subtract(a.multiply(*x), b);
  EXPECT_LT(normInf(r), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace flames::linalg
