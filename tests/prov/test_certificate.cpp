// Certificate build + text round-trip tests (prov/certificate.h): cutting a
// certificate from a recorded Fig. 6 diagnosis, rendering it to the
// line-based text format and parsing it back must be lossless, and the
// parser must reject malformed input with a line number.
#include <gtest/gtest.h>

#include <string>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "prov/certificate.h"
#include "workload/scenarios.h"

namespace flames::prov {
namespace {

struct RecordedDiagnosis {
  diagnosis::DiagnosisReport report;
  Certificate cert;
};

RecordedDiagnosis shortR2Diagnosis() {
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  diagnosis::FlamesOptions opts;
  opts.recordProvenance = true;
  diagnosis::FlamesEngine engine(net, opts);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  RecordedDiagnosis out;
  out.report = engine.diagnose();
  out.cert = buildCertificate(engine.builtModel(), *out.report.provenance,
                              engine.observations());
  return out;
}

TEST(Certificate, BuildCutsTheWholeLog) {
  const RecordedDiagnosis d = shortR2Diagnosis();
  ASSERT_TRUE(d.report.provenance);
  EXPECT_EQ(d.cert.entries.size(), d.report.provenance->log.entries().size());
  EXPECT_EQ(d.cert.nogoods.size(), d.report.provenance->log.nogoods().size());
  EXPECT_EQ(d.cert.candidates.size(), d.report.provenance->hittingSets.size());
  EXPECT_EQ(d.cert.observations.size(), 3u);
  EXPECT_EQ(d.cert.lambda, d.report.provenance->lambda);
  EXPECT_EQ(d.cert.maxCardinality, d.report.provenance->maxCardinality);
}

TEST(Certificate, TextRoundTripIsLossless) {
  const Certificate cert = shortR2Diagnosis().cert;
  const std::string text = renderCertificate(cert);
  const Certificate back = parseCertificate(text);

  EXPECT_EQ(back.version, cert.version);
  EXPECT_EQ(back.policy, cert.policy);
  EXPECT_EQ(back.crispify, cert.crispify);
  EXPECT_EQ(back.lambda, cert.lambda);
  EXPECT_EQ(back.maxCardinality, cert.maxCardinality);

  ASSERT_EQ(back.entries.size(), cert.entries.size());
  for (std::size_t i = 0; i < cert.entries.size(); ++i) {
    const CertEntry& a = cert.entries[i];
    const CertEntry& b = back.entries[i];
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.quantity, a.quantity);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.source, a.source);
    EXPECT_EQ(b.constraintIndex, a.constraintIndex);
    // setprecision(17) makes the doubles round-trip exactly.
    EXPECT_EQ(b.value.m1, a.value.m1);
    EXPECT_EQ(b.value.m2, a.value.m2);
    EXPECT_EQ(b.value.alpha, a.value.alpha);
    EXPECT_EQ(b.value.beta, a.value.beta);
    EXPECT_EQ(b.env, a.env);
    EXPECT_EQ(b.degree, a.degree);
    EXPECT_EQ(b.depth, a.depth);
    EXPECT_EQ(b.parents, a.parents);
  }

  ASSERT_EQ(back.nogoods.size(), cert.nogoods.size());
  for (std::size_t i = 0; i < cert.nogoods.size(); ++i) {
    const CertNogood& a = cert.nogoods[i];
    const CertNogood& b = back.nogoods[i];
    EXPECT_EQ(b.quantity, a.quantity);
    EXPECT_EQ(b.a, a.a);
    EXPECT_EQ(b.b, a.b);
    EXPECT_EQ(b.dc, a.dc);
    EXPECT_EQ(b.degree, a.degree);
    EXPECT_EQ(b.kept, a.kept);
    EXPECT_EQ(b.env, a.env);
  }

  ASSERT_EQ(back.candidates.size(), cert.candidates.size());
  for (std::size_t i = 0; i < cert.candidates.size(); ++i) {
    EXPECT_EQ(back.candidates[i].members, cert.candidates[i].members);
  }

  ASSERT_EQ(back.observations.size(), cert.observations.size());
  for (std::size_t i = 0; i < cert.observations.size(); ++i) {
    EXPECT_EQ(back.observations[i].quantity, cert.observations[i].quantity);
    EXPECT_EQ(back.observations[i].value.m1, cert.observations[i].value.m1);
    EXPECT_EQ(back.observations[i].env, cert.observations[i].env);
  }

  // Render of the parse reproduces the text byte-for-byte.
  EXPECT_EQ(renderCertificate(back), text);
}

TEST(Certificate, FileRoundTrip) {
  const Certificate cert = shortR2Diagnosis().cert;
  const std::string path =
      testing::TempDir() + "/flames_cert_roundtrip.txt";
  writeCertificateFile(path, cert);
  const Certificate back = loadCertificateFile(path);
  EXPECT_EQ(renderCertificate(back), renderCertificate(cert));
}

TEST(Certificate, ParseRejectsMissingHeader) {
  EXPECT_THROW((void)parseCertificate("policy fuzzy\nend\n"),
               std::runtime_error);
}

TEST(Certificate, ParseRejectsTruncatedFile) {
  std::string text = renderCertificate(shortR2Diagnosis().cert);
  text.resize(text.rfind("end"));
  EXPECT_THROW((void)parseCertificate(text), std::runtime_error);
}

TEST(Certificate, ParseRejectsMalformedRecord) {
  EXPECT_THROW(
      (void)parseCertificate("flames-certificate v1\nnogood oops\nend\n"),
      std::runtime_error);
}

}  // namespace
}  // namespace flames::prov
