// Explanation renderer tests (prov/explain.h), including a golden snapshot
// of the Fig. 6 / Fig. 7 "short circuit on R2" explanation — the walkthrough
// README.md reproduces. Update intentionally-changed goldens with
//
//   FLAMES_UPDATE_GOLDEN=1 ctest --test-dir build -R Explain
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "prov/explain.h"
#include "workload/scenarios.h"

#ifndef FLAMES_PROV_GOLDEN_DIR
#error "FLAMES_PROV_GOLDEN_DIR must point at tests/prov/golden"
#endif

namespace flames::prov {
namespace {

diagnosis::FlamesEngine& engineShortR2() {
  static diagnosis::FlamesEngine* engine = [] {
    const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
    const auto readings = workload::simulateMeasurements(
        net, {circuit::Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
    diagnosis::FlamesOptions opts;
    opts.recordProvenance = true;
    auto* e = new diagnosis::FlamesEngine(net, opts);
    for (const auto& r : readings) e->measure(r.node, r.volts);
    return e;
  }();
  return *engine;
}

const diagnosis::DiagnosisReport& reportShortR2() {
  static const diagnosis::DiagnosisReport report = engineShortR2().diagnose();
  return report;
}

void compareGolden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(FLAMES_PROV_GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("FLAMES_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << path << " missing - run with FLAMES_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "explanation drifted from " << path
      << "; if intentional, re-run with FLAMES_UPDATE_GOLDEN=1 and review "
         "the diff";
}

TEST(Explain, GoldenShortR2Component) {
  compareGolden("explain_short_r2",
                renderExplanation(engineShortR2().builtModel(),
                                  reportShortR2(), "R2"));
}

TEST(Explain, ComponentExplanationNamesTheEvidence) {
  const std::string text = renderExplanation(engineShortR2().builtModel(),
                                             reportShortR2(), "R2");
  // The narrative must name the target, at least one conflict with its Dc,
  // and at least one constraint application in the derivation chain.
  EXPECT_NE(text.find("R2"), std::string::npos);
  EXPECT_NE(text.find("Dc"), std::string::npos);
  EXPECT_NE(text.find("nogood degree"), std::string::npos);
  EXPECT_NE(text.find("via ohm(R2)"), std::string::npos);
}

TEST(Explain, QuantityTargetSelectsConflictsThere) {
  const std::string text = renderExplanation(engineShortR2().builtModel(),
                                             reportShortR2(), "V(V1)");
  EXPECT_NE(text.find("V(V1)"), std::string::npos);
  EXPECT_NE(text.find("conflict"), std::string::npos);
}

TEST(Explain, JsonCarriesTheSameStructure) {
  const std::string json = explanationJson(engineShortR2().builtModel(),
                                           reportShortR2(), "R2");
  EXPECT_NE(json.find("\"target\":\"R2\""), std::string::npos);
  EXPECT_NE(json.find("\"nogoods\""), std::string::npos);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\""), std::string::npos);
}

TEST(Explain, UnknownTargetThrows) {
  EXPECT_THROW((void)renderExplanation(engineShortR2().builtModel(),
                                       reportShortR2(), "R99"),
               std::invalid_argument);
}

TEST(Explain, MissingProvenanceThrows) {
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  diagnosis::FlamesEngine engine(net);  // recordProvenance off
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const diagnosis::DiagnosisReport report = engine.diagnose();
  EXPECT_THROW(
      (void)renderExplanation(engine.builtModel(), report, "R2"),
      std::runtime_error);
}

}  // namespace
}  // namespace flames::prov
