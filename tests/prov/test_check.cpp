// Tests for the independent certificate checker (prov/check.h): a genuine
// certificate replays clean, and each class of tampering — forged values,
// doctored Dc, rewired derivations, padded or gutted candidates, flipped
// subsumption verdicts — is caught with at least one violation.
#include <gtest/gtest.h>

#include <string>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "prov/certificate.h"
#include "prov/check.h"
#include "workload/scenarios.h"

namespace flames::prov {
namespace {

struct Fixture {
  circuit::Netlist net;
  Certificate cert;
};

const Fixture& shortR2() {
  static const Fixture* f = [] {
    auto* out = new Fixture{circuit::paperFig6ThreeStageAmp(), {}};
    const auto readings = workload::simulateMeasurements(
        out->net, {circuit::Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
    diagnosis::FlamesOptions opts;
    opts.recordProvenance = true;
    diagnosis::FlamesEngine engine(out->net, opts);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const diagnosis::DiagnosisReport report = engine.diagnose();
    out->cert = buildCertificate(engine.builtModel(), *report.provenance,
                                 engine.observations());
    return out;
  }();
  return *f;
}

std::size_t firstDerived(const Certificate& cert) {
  for (std::size_t i = 0; i < cert.entries.size(); ++i) {
    if (cert.entries[i].kind == CertKind::kDerived) return i;
  }
  ADD_FAILURE() << "certificate has no derived entry";
  return 0;
}

TEST(Check, GenuineCertificateReplaysClean) {
  const Fixture& f = shortR2();
  const CheckResult r = checkCertificate(f.net, f.cert);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.entriesChecked, f.cert.entries.size());
  EXPECT_EQ(r.nogoodsChecked, f.cert.nogoods.size());
  EXPECT_EQ(r.candidatesChecked, f.cert.candidates.size());
}

TEST(Check, TextRoundTripReplaysClean) {
  const Fixture& f = shortR2();
  const Certificate back = parseCertificate(renderCertificate(f.cert));
  EXPECT_TRUE(checkCertificate(f.net, back).ok());
}

TEST(Check, CatchesForgedDerivedValue) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  cert.entries[firstDerived(cert)].value.m1 += 0.5;
  cert.entries[firstDerived(cert)].value.m2 += 0.5;
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesRewiredConstraint) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  CertEntry& e = cert.entries[firstDerived(cert)];
  e.constraintIndex = e.constraintIndex == 0 ? 1 : 0;
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesDoctoredDc) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  ASSERT_FALSE(cert.nogoods.empty());
  cert.nogoods.front().dc = 0.5;
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesDoctoredNogoodDegree) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  ASSERT_FALSE(cert.nogoods.empty());
  cert.nogoods.front().degree *= 0.5;
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesFlippedSubsumptionVerdict) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  ASSERT_FALSE(cert.nogoods.empty());
  cert.nogoods.front().kept = !cert.nogoods.front().kept;
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesPaddedCandidate) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  ASSERT_FALSE(cert.candidates.empty());
  // A singleton candidate padded with a second member is no longer minimal:
  // the extra member has no nogood it alone hits.
  for (CertCandidate& c : cert.candidates) {
    if (c.members.size() == 1 && c.members.front() != "Q3") {
      c.members.push_back("Q3");
      EXPECT_FALSE(checkCertificate(f.net, cert).ok());
      return;
    }
  }
  GTEST_SKIP() << "no singleton candidate to pad";
}

TEST(Check, CatchesGuttedCandidateList) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  ASSERT_FALSE(cert.candidates.empty());
  // Dropping one candidate leaves some minimal λ-cut nogood env unhit by
  // any remaining candidate only if that candidate was its unique cover —
  // instead, gut a candidate's members entirely: empty candidates are
  // always rejected.
  cert.candidates.front().members.clear();
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesCyclicParentReference) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  CertEntry& e = cert.entries[firstDerived(cert)];
  for (std::uint32_t& p : e.parents) {
    if (p != kNoParent) {
      p = e.id;  // self-reference: parent ids must precede the child
      break;
    }
  }
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, CatchesUnknownNames) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  cert.entries.front().quantity = "V(no_such_node)";
  EXPECT_FALSE(checkCertificate(f.net, cert).ok());
}

TEST(Check, ViolationCapIsHonored) {
  const Fixture& f = shortR2();
  Certificate cert = f.cert;
  for (CertEntry& e : cert.entries) e.degree = 0.25;  // break everything
  CheckOptions opts;
  opts.maxViolations = 3;
  const CheckResult r = checkCertificate(f.net, cert, {}, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(r.violations.size(), 4u);  // cap plus one "...capped" marker
}

}  // namespace
}  // namespace flames::prov
