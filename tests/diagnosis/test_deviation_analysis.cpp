#include "diagnosis/deviation_analysis.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"
#include "circuit/fault.h"
#include "circuit/mna.h"
#include "diagnosis/flames.h"
#include "workload/scenarios.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

Netlist divider() {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.02);
  n.addResistor("R2", "mid", "0", 1.0, 0.02);
  return n;
}

TEST(SensitivitySigns, DividerSigns) {
  const SensitivitySigns signs(divider());
  // Raising R1 lowers the divider output; raising R2 raises it.
  EXPECT_EQ(signs.sign("mid", "R1"), -1);
  EXPECT_EQ(signs.sign("mid", "R2"), 1);
  // The stiff source node is insensitive to both.
  EXPECT_EQ(signs.sign("in", "R1"), 0);
  EXPECT_EQ(signs.sign("in", "R2"), 0);
  // Unknown pairs are 0.
  EXPECT_EQ(signs.sign("nope", "R1"), 0);
  EXPECT_EQ(signs.sign("mid", "nope"), 0);
}

TEST(SensitivitySigns, SourcesExcluded) {
  const SensitivitySigns signs(divider());
  for (const auto& c : signs.components()) EXPECT_NE(c, "V1");
}

TEST(ExplainBySigns, MidLowImplicatesR1HighOrR2Low) {
  const SensitivitySigns signs(divider());
  // Symptom: mid deviates BELOW nominal (signed Dc negative).
  const std::vector<Symptom> signature = {{"V(mid)", -0.2}};
  const auto hyps = explainBySigns(signs, signature);
  ASSERT_GE(hyps.size(), 2u);
  // Perfect-agreement hypotheses first: R1 high and R2 low both lower mid.
  EXPECT_DOUBLE_EQ(hyps[0].agreement, 1.0);
  EXPECT_DOUBLE_EQ(hyps[1].agreement, 1.0);
  auto matches = [&](const DirectedHypothesis& h, const std::string& c,
                     DeviationDirection d) {
    return h.component == c && h.direction == d;
  };
  const bool r1High = matches(hyps[0], "R1", DeviationDirection::kHigh) ||
                      matches(hyps[1], "R1", DeviationDirection::kHigh);
  const bool r2Low = matches(hyps[0], "R2", DeviationDirection::kLow) ||
                     matches(hyps[1], "R2", DeviationDirection::kLow);
  EXPECT_TRUE(r1High);
  EXPECT_TRUE(r2Low);
}

TEST(ExplainBySigns, NoSymptomsNoExplanations) {
  const SensitivitySigns signs(divider());
  const std::vector<Symptom> healthy = {{"V(mid)", 1.0}};
  for (const auto& h : explainBySigns(signs, healthy)) {
    EXPECT_DOUBLE_EQ(h.agreement, 0.0);
  }
}

TEST(ExplainBySigns, NonVoltageQuantitiesIgnored) {
  const SensitivitySigns signs(divider());
  const std::vector<Symptom> signature = {{"I(R1)", -0.2}};
  for (const auto& h : explainBySigns(signs, signature)) {
    EXPECT_DOUBLE_EQ(h.agreement, 0.0);
  }
}

TEST(ExplainBySigns, Fig7NodeOpenRow) {
  // The paper's commentary: for the N1-open symptom pattern, "R2 is very
  // low or R3 is very high" — V1 reads high, so (with R2 as the collector
  // load) R2-low and R1/R3-direction hypotheses must agree with the signs.
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const SensitivitySigns signs(net);

  FlamesEngine engine(net);
  const auto readings = workload::simulateMeasurements(
      net, {Fault::pinOpen("T1", 1)}, {"V1", "V2", "Vs"});
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.directedHypotheses.empty());

  // The best hypotheses must involve stage-1 components with full
  // agreement across the three symptoms.
  const auto& best = report.directedHypotheses.front();
  EXPECT_DOUBLE_EQ(best.agreement, 1.0);
  EXPECT_TRUE(best.component == "R1" || best.component == "R2" ||
              best.component == "R3" || best.component == "T1")
      << best.component;
}

TEST(ExplainBySigns, DirectionDiscriminationOnAmplifier) {
  // R2 (collector load) shorted pulls V1 high: "R2 low" must agree on the
  // V1 symptom and "R2 high" must not.
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const SensitivitySigns signs(net);
  const std::vector<Symptom> signature = {{"V(V1)", 0.1}};  // V1 above nominal
  const auto hyps = explainBySigns(signs, signature);
  double r2Low = -1.0, r2High = -1.0;
  for (const auto& h : hyps) {
    if (h.component == "R2" && h.direction == DeviationDirection::kLow) {
      r2Low = h.agreement;
    }
    if (h.component == "R2" && h.direction == DeviationDirection::kHigh) {
      r2High = h.agreement;
    }
  }
  EXPECT_DOUBLE_EQ(r2Low, 1.0);
  EXPECT_DOUBLE_EQ(r2High, 0.0);
}

TEST(DeviationDirectionName, Names) {
  EXPECT_EQ(deviationDirectionName(DeviationDirection::kHigh), "high");
  EXPECT_EQ(deviationDirectionName(DeviationDirection::kLow), "low");
}

}  // namespace
}  // namespace flames::diagnosis
