#include "diagnosis/ac_diagnosis.h"

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/ac.h"
#include "circuit/fault.h"
#include "diagnosis/report.h"

namespace flames::diagnosis {
namespace {

using circuit::AcSolver;
using circuit::Fault;
using circuit::Netlist;

// Two-stage RC lowpass with distinct corners: faults in either stage have
// distinguishable spectral signatures.
Netlist twoStageRc() {
  Netlist n;
  n.addVSource("Vin", "in", "0", 1.0);
  n.addResistor("R1", "in", "m", 1.0, 0.02);
  n.addCapacitor("C1", "m", "0", 1.0, 0.05);
  n.addResistor("R2", "m", "out", 10.0, 0.02);
  n.addCapacitor("C2", "out", "0", 0.1, 0.05);
  return n;
}

std::vector<AcProbe> standardProbes() {
  const double f1 = 1.0 / (2.0 * std::numbers::pi);  // ~stage-1 corner
  return {{"m", f1 / 10.0}, {"m", f1},      {"m", f1 * 10.0},
          {"out", f1 / 10.0}, {"out", f1},  {"out", f1 * 10.0}};
}

// Measures a (possibly faulted) circuit at the standard probes.
void measureAll(AcDiagnosisEngine& engine, const Netlist& nominal,
                const std::vector<Fault>& faults) {
  const Netlist faulted = circuit::applyFaults(nominal, faults);
  const AcSolver solver(faulted);
  for (const AcProbe& p : standardProbes()) {
    engine.measure(p.node, p.hertz,
                   solver.gainMagnitude(p.hertz, "Vin", p.node));
  }
}

TEST(AcDiagnosis, QuantityNaming) {
  EXPECT_EQ(AcDiagnosisEngine::quantityName({"out", 2.5}),
            "mag(V(out))@2.5Hz");
}

TEST(AcDiagnosis, HealthyFilterIsQuiet) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {});
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.propagationCompleted);
  EXPECT_FALSE(report.faultDetected());
}

TEST(AcDiagnosis, OpenCapacitorIsolated) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {Fault::open("C1")});
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"C1"});
  ASSERT_TRUE(report.candidates.front().modeMatch.has_value());
  EXPECT_EQ(report.candidates.front().modeMatch->mode, "open");
}

TEST(AcDiagnosis, ShortedStageTwoCapacitorIsolated) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {Fault::shortCircuit("C2")});
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"C2"});
}

TEST(AcDiagnosis, StageOneFaultDoesNotBlameStageTwoOnly) {
  // A C1 drift changes both probes' responses; the nogood environments must
  // include stage-1 components.
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {Fault::paramScale("C1", 3.0)});
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  bool c1Somewhere = false;
  for (const auto& ng : report.nogoods) {
    for (const auto& comp : ng.components) {
      if (comp == "C1") c1Somewhere = true;
    }
  }
  EXPECT_TRUE(c1Somewhere);
}

TEST(AcDiagnosis, DcTableShowsDirections) {
  // Open C1 removes stage-1 rolloff: high-frequency magnitudes read HIGH.
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {Fault::open("C1")});
  const auto report = engine.diagnose();
  bool sawAboveNominal = false;
  for (const auto& m : report.measurements) {
    if (m.dc < 0.5 && m.signedDc >= 0.0) sawAboveNominal = true;
  }
  EXPECT_TRUE(sawAboveNominal);
}

TEST(AcDiagnosis, RenderAcReportHasSections) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {Fault::open("C1")});
  const auto report = engine.diagnose();
  const std::string text = renderAcReport(report);
  EXPECT_NE(text.find("dynamic-mode report"), std::string::npos);
  EXPECT_NE(text.find("measurements"), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
  EXPECT_NE(text.find("C1"), std::string::npos);
}

TEST(AcDiagnosis, MeasureValidatesProbe) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  EXPECT_THROW(engine.measure("out", 99.25, 1.0), std::out_of_range);
}

TEST(AcDiagnosis, ClearMeasurementsResets) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  measureAll(engine, net, {Fault::open("C1")});
  engine.clearMeasurements();
  measureAll(engine, net, {});
  EXPECT_FALSE(engine.diagnose().faultDetected());
}

TEST(AcDiagnosis, ExplanationDegreeDiscriminates) {
  const Netlist net = twoStageRc();
  AcDiagnosisEngine engine(net, "Vin", standardProbes());
  const Netlist faulted = circuit::applyFaults(net, {Fault::open("C1")});
  const AcSolver solver(faulted);
  std::vector<AcObservation> obs;
  for (const AcProbe& p : standardProbes()) {
    const double m = solver.gainMagnitude(p.hertz, "Vin", p.node);
    obs.push_back({p, fuzzy::FuzzyInterval::about(m, 0.02 * m + 1e-6)});
  }
  EXPECT_GT(engine.explanationDegreeAc(Fault::open("C1"), obs), 0.9);
  EXPECT_LT(engine.explanationDegreeAc(Fault::open("C2"), obs), 0.1);
  EXPECT_DOUBLE_EQ(engine.explanationDegreeAc(Fault::open("C1"), {}), 0.0);
}

TEST(AcDiagnosis, BjtAmplifierGainFaultDetected) {
  // Dynamic-mode diagnosis on an active circuit: the coupling capacitor of
  // a one-stage CE amplifier goes open; the mid-band gain collapses.
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 18.0);
  n.addResistor("R2", "vcc", "V1", 12.0, 0.02);
  n.addResistor("R1", "V1", "N1", 200.0, 0.02);
  n.addResistor("R3", "N1", "0", 24.0, 0.02);
  n.addNpn("T1", "V1", "N1", "0", 300.0, 0.05);
  n.addVSource("Vsig", "sig", "0", 0.0);
  n.addResistor("Rs", "sig", "cin", 10.0, 0.02);
  // Coupling corner near ~10 Hz (tau = Rth * C with kOhm * uF = ms), so the
  // probes below straddle it and the cap's tolerance is observable.
  n.addCapacitor("Cc", "cin", "N1", 1.0, 0.05);

  const std::vector<AcProbe> probes = {{"V1", 5.0}, {"V1", 50.0}};
  AcDiagnosisEngine engine(n, "Vsig", probes);
  const Netlist faulted = circuit::applyFaults(n, {Fault::open("Cc")});
  const circuit::AcSolver solver(faulted);
  for (const AcProbe& p : probes) {
    engine.measure(p.node, p.hertz,
                   solver.gainMagnitude(p.hertz, "Vsig", p.node));
  }
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  // Cc must be among the top candidates.
  bool found = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(2, report.candidates.size());
       ++i) {
    for (const auto& c : report.candidates[i].components) {
      if (c == "Cc") found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace flames::diagnosis
