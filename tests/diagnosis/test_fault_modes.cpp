#include "diagnosis/fault_modes.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"
#include "circuit/mna.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;
using fuzzy::FuzzyInterval;

Netlist divider() {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

std::vector<Observation> observe(const Netlist& net,
                                 const std::vector<Fault>& faults,
                                 const std::vector<std::string>& nodes,
                                 double spread = 0.05) {
  const Netlist faulted = circuit::applyFaults(net, faults);
  const auto op = circuit::DcSolver(faulted).solve();
  std::vector<Observation> obs;
  for (const auto& node : nodes) {
    obs.push_back(
        {node, FuzzyInterval::about(op.v(faulted.findNode(node)), spread)});
  }
  return obs;
}

TEST(FaultModes, StandardModeLibrary) {
  Netlist n = divider();
  const auto rModes = standardModesFor(n.component("R1"));
  ASSERT_EQ(rModes.size(), 4u);
  EXPECT_EQ(rModes[0].name, "open");
  EXPECT_EQ(rModes[1].name, "short");

  Netlist amp = circuit::paperFig6ThreeStageAmp();
  const auto tModes = standardModesFor(amp.component("T1"));
  EXPECT_EQ(tModes.size(), 3u);
  EXPECT_EQ(tModes[0].name, "dead");
}

TEST(FaultModes, ExplanationDegreeHighForTrueFault) {
  const Netlist n = divider();
  const auto obs = observe(n, {Fault::shortCircuit("R1")}, {"mid"});
  EXPECT_GT(explanationDegree(n, Fault::shortCircuit("R1"), obs, 0.05), 0.9);
}

TEST(FaultModes, ExplanationDegreeZeroForWrongFault) {
  const Netlist n = divider();
  const auto obs = observe(n, {Fault::shortCircuit("R1")}, {"mid"});
  // Shorting R2 pulls mid to 0 V, not 10 V.
  EXPECT_NEAR(explanationDegree(n, Fault::shortCircuit("R2"), obs, 0.05), 0.0,
              1e-9);
}

TEST(FaultModes, EmptyObservationsScoreZero) {
  const Netlist n = divider();
  EXPECT_DOUBLE_EQ(explanationDegree(n, Fault::open("R1"), {}, 0.05), 0.0);
}

TEST(FaultModes, BestFaultModeIdentifiesShort) {
  const Netlist n = divider();
  const auto obs = observe(n, {Fault::shortCircuit("R2")}, {"mid"});
  const auto match = bestFaultMode(n, "R2", obs);
  EXPECT_GT(match.matchDegree, 0.9);
  // Either the discrete "short" mode or a near-zero estimated value.
  if (match.mode == "estimated") {
    ASSERT_TRUE(match.estimatedValue.has_value());
    EXPECT_LT(*match.estimatedValue, 0.01);
  } else {
    EXPECT_EQ(match.mode, "short");
  }
}

TEST(FaultModes, EstimationRecoversSoftDeviation) {
  // R2 drifted to 1.5 kOhm: no discrete mode matches well, but the
  // continuous search should locate a value near 1.5.
  const Netlist n = divider();
  const auto obs = observe(n, {Fault::paramExact("R2", 1.5)}, {"mid"}, 0.02);
  const auto match = bestFaultMode(n, "R2", obs);
  EXPECT_GT(match.matchDegree, 0.8);
  ASSERT_EQ(match.mode, "estimated");
  ASSERT_TRUE(match.estimatedValue.has_value());
  EXPECT_NEAR(*match.estimatedValue, 1.5, 0.15);
}

TEST(FaultModes, WrongComponentCannotExplain) {
  // R2 high raises mid; no R1 mode reproduces that exact signature as well
  // as the true culprit does.
  const Netlist n = divider();
  const auto obs = observe(n, {Fault::paramExact("R2", 3.0)}, {"mid"}, 0.02);
  const auto r2Match = bestFaultMode(n, "R2", obs);
  const auto r1Match = bestFaultMode(n, "R1", obs);
  EXPECT_GT(r2Match.matchDegree, 0.8);
  // R1 low can also raise mid, so it may partially explain — but the true
  // component must explain at least as well.
  EXPECT_GE(r2Match.matchDegree, r1Match.matchDegree - 1e-9);
}

TEST(FaultModes, MultipleObservationsSharpenDiscrimination) {
  // With both mid and in observed, R1-low (which changes the R1 current)
  // is distinguished from R2-high.
  const Netlist n = divider();
  const auto obs =
      observe(n, {Fault::paramExact("R2", 3.0)}, {"mid", "in"}, 0.02);
  const auto r2Match = bestFaultMode(n, "R2", obs);
  EXPECT_GT(r2Match.matchDegree, 0.8);
}

TEST(FaultModes, Fig7ShortOnR2IsIdentified) {
  const Netlist n = circuit::paperFig6ThreeStageAmp();
  const auto obs =
      observe(n, {Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"}, 0.05);
  const auto match = bestFaultMode(n, "R2", obs);
  EXPECT_GT(match.matchDegree, 0.9);
  const auto wrong = bestFaultMode(n, "R5", obs);
  EXPECT_LT(wrong.matchDegree, match.matchDegree);
}

TEST(FaultModes, UnknownNodeInObservationScoresZero) {
  const Netlist n = divider();
  const std::vector<Observation> obs = {
      {"nonexistent", FuzzyInterval::crisp(1.0)}};
  EXPECT_DOUBLE_EQ(explanationDegree(n, Fault::open("R1"), obs, 0.05), 0.0);
}

}  // namespace
}  // namespace flames::diagnosis
