// Deterministic rendering tests on hand-crafted reports (the renderer is
// user-facing output; its format regressions should be caught directly).
#include "diagnosis/report.h"

#include <gtest/gtest.h>

namespace flames::diagnosis {
namespace {

DiagnosisReport craftedReport() {
  DiagnosisReport r;
  r.propagationCompleted = true;
  r.propagationSteps = 42;

  MeasurementSummary m;
  m.quantity = "V(out)";
  m.measured = fuzzy::FuzzyInterval::about(4.5, 0.05);
  m.nominal = fuzzy::FuzzyInterval::about(5.0, 0.2);
  m.dc = 0.25;
  m.signedDc = -0.25;
  m.direction = -1;
  r.measurements.push_back(m);

  RankedNogood ng;
  ng.components = {"R1", "R2"};
  ng.degree = 0.75;
  ng.note = "conflict on V(out)";
  r.nogoods.push_back(ng);

  RankedCandidate c;
  c.components = {"R2"};
  c.suspicion = 0.75;
  c.plausibility = 0.9;
  FaultModeMatch match;
  match.component = "R2";
  match.mode = "estimated";
  match.matchDegree = 0.9;
  match.estimatedValue = 1.5;
  c.modeMatch = match;
  c.hints.push_back({"R2", "low", 0.45, 0.5});
  r.candidates.push_back(c);

  r.ruleActivations.push_back({"region(T1)/on", "T1 conducting", 0.9});
  r.directedHypotheses.push_back(
      {"R2", DeviationDirection::kLow, 1.0, 1});
  r.hints.push_back({"R2", "low", 0.45, 0.5});
  r.suspicion["R1"] = 0.75;
  r.suspicion["R2"] = 0.75;
  return r;
}

TEST(Report, FullRenderContainsEverySection) {
  const std::string text = renderReport(craftedReport());
  EXPECT_NE(text.find("42 steps"), std::string::npos);
  EXPECT_NE(text.find("V(out)"), std::string::npos);
  EXPECT_NE(text.find("Dc = -0.250"), std::string::npos);
  EXPECT_NE(text.find("{R1,R2}  degree 0.750"), std::string::npos);
  EXPECT_NE(text.find("conflict on V(out)"), std::string::npos);
  EXPECT_NE(text.find("{R2}  plausibility 0.900"), std::string::npos);
  EXPECT_NE(text.find("mode=estimated (value ~ 1.500)"), std::string::npos);
  EXPECT_NE(text.find("deviation-sign explanations"), std::string::npos);
  EXPECT_NE(text.find("R2 low  agreement 1.000"), std::string::npos);
  EXPECT_NE(text.find("T1 conducting"), std::string::npos);
  EXPECT_NE(text.find("experience hints"), std::string::npos);
}

TEST(Report, IncompletePropagationIsFlagged) {
  DiagnosisReport r = craftedReport();
  r.propagationCompleted = false;
  EXPECT_NE(renderReport(r).find("BUDGET EXHAUSTED"), std::string::npos);
}

TEST(Report, EmptyReportRendersPlaceholders) {
  DiagnosisReport r;
  r.propagationCompleted = true;
  const std::string text = renderReport(r);
  EXPECT_NE(text.find("(none: no discrepancy detected)"), std::string::npos);
  EXPECT_NE(text.find("(none)"), std::string::npos);
  EXPECT_EQ(summarizeReport(r), "no fault detected");
}

TEST(Report, SummaryNamesModeAndPlausibility) {
  const std::string s = summarizeReport(craftedReport());
  EXPECT_EQ(s, "fault detected; best candidate {R2} (estimated, 0.900)");
}

TEST(Report, SummaryWithoutCandidates) {
  DiagnosisReport r;
  RankedNogood ng;
  ng.components = {"R1"};
  r.nogoods.push_back(ng);
  EXPECT_EQ(summarizeReport(r),
            "fault detected; no candidate explains the conflicts");
}

TEST(Report, BestCandidateHelper) {
  EXPECT_TRUE(DiagnosisReport{}.bestCandidate().empty());
  const auto r = craftedReport();
  EXPECT_EQ(r.bestCandidate(), std::vector<std::string>{"R2"});
}

}  // namespace
}  // namespace flames::diagnosis
