#include "diagnosis/flames.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "diagnosis/report.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

Netlist divider() {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

double faultedVoltage(const Netlist& net, const std::vector<Fault>& faults,
                      const std::string& node) {
  const Netlist f = circuit::applyFaults(net, faults);
  return circuit::DcSolver(f).solve().v(f.findNode(node));
}

TEST(FlamesEngine, HealthyCircuitReportsNoFault) {
  FlamesEngine engine(divider());
  engine.measure("mid", 5.0);
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.propagationCompleted);
  EXPECT_FALSE(report.faultDetected());
  EXPECT_TRUE(report.bestCandidate().empty());
}

TEST(FlamesEngine, ShortedResistorIsolated) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid", faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"R2"});
  ASSERT_TRUE(report.candidates.front().modeMatch.has_value());
  EXPECT_GT(report.candidates.front().plausibility, 0.8);
}

TEST(FlamesEngine, MeasureUnknownNodeThrows) {
  FlamesEngine engine(divider());
  EXPECT_THROW(engine.measure("bogus", 1.0), std::out_of_range);
}

TEST(FlamesEngine, ClearMeasurementsResets) {
  FlamesEngine engine(divider());
  engine.measure("mid", 9.0);
  engine.clearMeasurements();
  engine.measure("mid", 5.0);
  const auto report = engine.diagnose();
  EXPECT_FALSE(report.faultDetected());
}

TEST(FlamesEngine, MeasurementSummariesCarrySignedDc) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  // mid pulled slightly low => a partial conflict with negative signed Dc.
  engine.measure("mid", 4.82);
  const auto report = engine.diagnose();
  ASSERT_EQ(report.measurements.size(), 1u);
  EXPECT_EQ(report.measurements.front().quantity, "V(mid)");
  EXPECT_LT(report.measurements.front().dc, 1.0);
  EXPECT_LE(report.measurements.front().signedDc, 0.0);
  ASSERT_EQ(report.signature.size(), 1u);
  EXPECT_EQ(report.signature.front().quantity, "V(mid)");
}

TEST(FlamesEngine, SuspicionCoversNogoodMembers) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid", 9.5);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  EXPECT_FALSE(report.suspicion.empty());
  for (const auto& ng : report.nogoods) {
    for (const auto& comp : ng.components) {
      EXPECT_EQ(report.suspicion.count(comp), 1u) << comp;
    }
  }
}

TEST(FlamesEngine, ConfirmFeedsExperience) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid",
                 faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto report = engine.diagnose();
  engine.confirm(report, "R2", "short");
  EXPECT_EQ(engine.experience().size(), 1u);

  // A second identical session must now surface the learned hint.
  engine.clearMeasurements();
  engine.measure("mid",
                 faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto second = engine.diagnose();
  ASSERT_FALSE(second.hints.empty());
  EXPECT_EQ(second.hints.front().component, "R2");
  EXPECT_EQ(second.hints.front().mode, "short");
}

TEST(FlamesEngine, RecommendTestsReturnsRankedProbes) {
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  FlamesEngine engine(net);
  engine.measure("Vs", faultedVoltage(net, {Fault::open("R3")}, "Vs"));
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.faultDetected());
  const auto tests = engine.recommendTests({{"V1"}, {"V2"}}, report);
  EXPECT_EQ(tests.size(), 2u);
}

TEST(FlamesEngine, RegionRulesInstalledForBjtCircuits) {
  FlamesEngine engine(circuit::paperFig6ThreeStageAmp());
  EXPECT_EQ(engine.knowledgeBase().size(), 6u);
  FlamesOptions opts;
  opts.installRegionRules = false;
  FlamesEngine bare(circuit::paperFig6ThreeStageAmp(), opts);
  EXPECT_EQ(bare.knowledgeBase().size(), 0u);
}

TEST(FlamesEngine, ExpertPriorsBreakCandidateTies) {
  // N1-open style ambiguity: several stage-1 candidates explain equally
  // well; an expert prior that distrusts R1 must pull it in front.
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  FlamesOptions opts;
  opts.expertPriors["R1"] = "likely-faulty";
  FlamesEngine engine(net, opts);
  const Netlist faulted =
      circuit::applyFaults(net, {Fault::pinOpen("T1", 1)});
  const auto op = circuit::DcSolver(faulted).solve();
  for (const char* node : {"V1", "V2", "Vs"}) {
    engine.measure(node, op.v(faulted.findNode(node)));
  }
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  // Without priors the tie resolves alphabetically towards R2 (see the
  // paper-figures test); the prior flips it.
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"R1"});
  EXPECT_GT(report.candidates.front().prior, 0.6);
}

TEST(FlamesEngine, UnknownPriorTermThrowsAtDiagnosis) {
  const Netlist net = divider();
  FlamesOptions opts;
  opts.expertPriors["R1"] = "bogus-term";
  FlamesEngine engine(net, opts);
  engine.measure("mid", 9.5);
  EXPECT_THROW((void)engine.diagnose(), std::out_of_range);
}

TEST(Report, RenderContainsKeySections) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid",
                 faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto report = engine.diagnose();
  const std::string text = renderReport(report);
  EXPECT_NE(text.find("measurements"), std::string::npos);
  EXPECT_NE(text.find("nogoods"), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
  EXPECT_NE(text.find("V(mid)"), std::string::npos);

  const std::string summary = summarizeReport(report);
  EXPECT_NE(summary.find("R2"), std::string::npos);
}

TEST(Report, RenderComponents) {
  EXPECT_EQ(renderComponents({"R1", "T1"}), "{R1,T1}");
  EXPECT_EQ(renderComponents({}), "{}");
}

TEST(Report, NoFaultSummary) {
  FlamesEngine engine(divider());
  engine.measure("mid", 5.0);
  const auto report = engine.diagnose();
  EXPECT_EQ(summarizeReport(report), "no fault detected");
}

}  // namespace
}  // namespace flames::diagnosis
