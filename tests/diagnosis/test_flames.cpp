#include "diagnosis/flames.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "diagnosis/report.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

Netlist divider() {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

double faultedVoltage(const Netlist& net, const std::vector<Fault>& faults,
                      const std::string& node) {
  const Netlist f = circuit::applyFaults(net, faults);
  return circuit::DcSolver(f).solve().v(f.findNode(node));
}

TEST(FlamesEngine, HealthyCircuitReportsNoFault) {
  FlamesEngine engine(divider());
  engine.measure("mid", 5.0);
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.propagationCompleted);
  EXPECT_FALSE(report.faultDetected());
  EXPECT_TRUE(report.bestCandidate().empty());
}

TEST(FlamesEngine, ShortedResistorIsolated) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid", faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"R2"});
  ASSERT_TRUE(report.candidates.front().modeMatch.has_value());
  EXPECT_GT(report.candidates.front().plausibility, 0.8);
}

TEST(FlamesEngine, MeasureUnknownNodeThrows) {
  FlamesEngine engine(divider());
  EXPECT_THROW(engine.measure("bogus", 1.0), std::out_of_range);
}

TEST(FlamesEngine, ClearMeasurementsResets) {
  FlamesEngine engine(divider());
  engine.measure("mid", 9.0);
  engine.clearMeasurements();
  engine.measure("mid", 5.0);
  const auto report = engine.diagnose();
  EXPECT_FALSE(report.faultDetected());
}

TEST(FlamesEngine, MeasurementSummariesCarrySignedDc) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  // mid pulled slightly low => a partial conflict with negative signed Dc.
  engine.measure("mid", 4.82);
  const auto report = engine.diagnose();
  ASSERT_EQ(report.measurements.size(), 1u);
  EXPECT_EQ(report.measurements.front().quantity, "V(mid)");
  EXPECT_LT(report.measurements.front().dc, 1.0);
  EXPECT_LE(report.measurements.front().signedDc, 0.0);
  ASSERT_EQ(report.signature.size(), 1u);
  EXPECT_EQ(report.signature.front().quantity, "V(mid)");
}

TEST(FlamesEngine, SuspicionCoversNogoodMembers) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid", 9.5);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  EXPECT_FALSE(report.suspicion.empty());
  for (const auto& ng : report.nogoods) {
    for (const auto& comp : ng.components) {
      EXPECT_EQ(report.suspicion.count(comp), 1u) << comp;
    }
  }
}

TEST(FlamesEngine, ConfirmFeedsExperience) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid",
                 faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto report = engine.diagnose();
  engine.confirm(report, "R2", "short");
  EXPECT_EQ(engine.experience().size(), 1u);

  // A second identical session must now surface the learned hint.
  engine.clearMeasurements();
  engine.measure("mid",
                 faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto second = engine.diagnose();
  ASSERT_FALSE(second.hints.empty());
  EXPECT_EQ(second.hints.front().component, "R2");
  EXPECT_EQ(second.hints.front().mode, "short");
}

TEST(FlamesEngine, RecommendTestsReturnsRankedProbes) {
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  FlamesEngine engine(net);
  engine.measure("Vs", faultedVoltage(net, {Fault::open("R3")}, "Vs"));
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.faultDetected());
  const auto tests = engine.recommendTests({{"V1"}, {"V2"}}, report);
  EXPECT_EQ(tests.size(), 2u);
}

TEST(FlamesEngine, RegionRulesInstalledForBjtCircuits) {
  FlamesEngine engine(circuit::paperFig6ThreeStageAmp());
  EXPECT_EQ(engine.knowledgeBase().size(), 6u);
  FlamesOptions opts;
  opts.installRegionRules = false;
  FlamesEngine bare(circuit::paperFig6ThreeStageAmp(), opts);
  EXPECT_EQ(bare.knowledgeBase().size(), 0u);
}

TEST(FlamesEngine, ExpertPriorsBreakCandidateTies) {
  // N1-open style ambiguity: several stage-1 candidates explain equally
  // well; an expert prior that distrusts R1 must pull it in front.
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  FlamesOptions opts;
  opts.expertPriors["R1"] = "likely-faulty";
  FlamesEngine engine(net, opts);
  const Netlist faulted =
      circuit::applyFaults(net, {Fault::pinOpen("T1", 1)});
  const auto op = circuit::DcSolver(faulted).solve();
  for (const char* node : {"V1", "V2", "Vs"}) {
    engine.measure(node, op.v(faulted.findNode(node)));
  }
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  // Without priors the tie resolves alphabetically towards R2 (see the
  // paper-figures test); the prior flips it.
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"R1"});
  EXPECT_GT(report.candidates.front().prior, 0.6);
}

TEST(FlamesEngine, UnknownPriorTermThrowsAtDiagnosis) {
  const Netlist net = divider();
  FlamesOptions opts;
  opts.expertPriors["R1"] = "bogus-term";
  FlamesEngine engine(net, opts);
  engine.measure("mid", 9.5);
  EXPECT_THROW((void)engine.diagnose(), std::out_of_range);
}

TEST(Report, RenderContainsKeySections) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  engine.measure("mid",
                 faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  const auto report = engine.diagnose();
  const std::string text = renderReport(report);
  EXPECT_NE(text.find("measurements"), std::string::npos);
  EXPECT_NE(text.find("nogoods"), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
  EXPECT_NE(text.find("V(mid)"), std::string::npos);

  const std::string summary = summarizeReport(report);
  EXPECT_NE(summary.find("R2"), std::string::npos);
}

TEST(Report, RenderComponents) {
  EXPECT_EQ(renderComponents({"R1", "T1"}), "{R1,T1}");
  EXPECT_EQ(renderComponents({}), "{}");
}

TEST(Report, NoFaultSummary) {
  FlamesEngine engine(divider());
  engine.measure("mid", 5.0);
  const auto report = engine.diagnose();
  EXPECT_EQ(summarizeReport(report), "no fault detected");
}

// --- Incremental probe sessions ----------------------------------------------

/// Order-insensitive view of the nogood list (size, degree), sorted.
std::vector<std::pair<std::size_t, double>> canonicalNogoods(
    const DiagnosisReport& r) {
  std::vector<std::pair<std::size_t, double>> out;
  for (const auto& n : r.nogoods) out.emplace_back(n.components.size(), n.degree);
  std::sort(out.begin(), out.end());
  return out;
}

void expectSameDiagnosis(const DiagnosisReport& batch,
                         const DiagnosisReport& inc) {
  EXPECT_EQ(canonicalNogoods(batch), canonicalNogoods(inc));
  EXPECT_EQ(batch.bestCandidate(), inc.bestCandidate());
  ASSERT_EQ(batch.candidates.size(), inc.candidates.size());
  for (std::size_t i = 0; i < batch.candidates.size(); ++i) {
    EXPECT_NEAR(batch.candidates[i].plausibility, inc.candidates[i].plausibility,
                1e-9);
  }
  ASSERT_EQ(batch.suspicion.size(), inc.suspicion.size());
  for (const auto& [comp, s] : batch.suspicion) {
    const auto it = inc.suspicion.find(comp);
    ASSERT_NE(it, inc.suspicion.end()) << comp;
    EXPECT_NEAR(s, it->second, 1e-9) << comp;
  }
}

TEST(FlamesEngine, AddMeasurementMatchesBatchDiagnosis) {
  const Netlist net = divider();
  const double vMid =
      faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid");
  const double vIn = faultedVoltage(net, {Fault::shortCircuit("R2")}, "in");

  FlamesEngine batch(net);
  batch.measure("mid", vMid);
  batch.measure("in", vIn);
  const auto batchReport = batch.diagnose();

  FlamesEngine inc(net);
  (void)inc.addMeasurement("mid", vMid);
  const auto incReport = inc.addMeasurement("in", vIn);

  expectSameDiagnosis(batchReport, incReport);
  EXPECT_EQ(incReport.bestCandidate(), std::vector<std::string>{"R2"});
}

TEST(FlamesEngine, SecondProbeIsIncrementalAndStaysInsideItsCone) {
  const Netlist net = divider();
  FlamesEngine engine(net);
  (void)engine.addMeasurement(
      "mid", faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid"));
  ASSERT_NE(engine.incrementalSession(), nullptr);
  // begin() is a from-scratch seed, never an incremental extension.
  EXPECT_FALSE(engine.incrementalSession()->lastIncremental());

  (void)engine.addMeasurement(
      "in", faultedVoltage(net, {Fault::shortCircuit("R2")}, "in"));
  const IncrementalSession& session = *engine.incrementalSession();
  // The divider at the stock entry cap never saturates, so the delta
  // extension is exact and the I12 cone contract applies.
  ASSERT_TRUE(session.lastIncremental());
  const auto& cone =
      engine.schedule().plan.cones[engine.builtModel().voltage("in")];
  for (const auto q : session.lastTouched()) {
    EXPECT_TRUE(std::binary_search(cone.quantities.begin(),
                                   cone.quantities.end(), q));
  }
  EXPECT_LE(session.lastStepsDelta(), cone.stepBound);
}

TEST(FlamesEngine, SaturationFallsBackToExactBatchRecompute) {
  const Netlist net = divider();
  const double vMid =
      faultedVoltage(net, {Fault::shortCircuit("R2")}, "mid");
  const double vIn = faultedVoltage(net, {Fault::shortCircuit("R2")}, "in");

  // An entry cap of one saturates immediately (the predictions alone fill
  // it): the session must detect the discards and re-run the batch
  // pipeline, so the answers still match diagnose() exactly.
  FlamesOptions opts;
  opts.propagation.maxEntriesPerQuantity = 1;

  FlamesEngine batch(net, opts);
  batch.measure("mid", vMid);
  batch.measure("in", vIn);
  const auto batchReport = batch.diagnose();

  FlamesEngine inc(net, opts);
  (void)inc.addMeasurement("mid", vMid);
  const auto incReport = inc.addMeasurement("in", vIn);
  ASSERT_NE(inc.incrementalSession(), nullptr);
  EXPECT_FALSE(inc.incrementalSession()->lastIncremental());

  expectSameDiagnosis(batchReport, incReport);
}

TEST(FlamesEngine, MeasureInvalidatesTheIncrementalSession) {
  FlamesEngine engine(divider());
  (void)engine.addMeasurement("mid", 9.0);
  ASSERT_NE(engine.incrementalSession(), nullptr);
  engine.measure("in", 10.0);
  EXPECT_EQ(engine.incrementalSession(), nullptr);
  engine.clearMeasurements();
  (void)engine.addMeasurement("mid", 5.0);
  EXPECT_NE(engine.incrementalSession(), nullptr);
}

}  // namespace
}  // namespace flames::diagnosis
