#include "diagnosis/knowledge_base.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"

namespace flames::diagnosis {
namespace {

using constraints::Model;
using constraints::Propagator;
using fuzzy::FuzzyInterval;

TEST(KnowledgeBase, AtLeastAtMostShapes) {
  const auto ge = KnowledgeBase::atLeast(0.4, 0.1);
  EXPECT_DOUBLE_EQ(ge.membership(0.25), 0.0);
  EXPECT_NEAR(ge.membership(0.35), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(ge.membership(0.4), 1.0);
  EXPECT_DOUBLE_EQ(ge.membership(100.0), 1.0);

  const auto le = KnowledgeBase::atMost(0.4, 0.1);
  EXPECT_DOUBLE_EQ(le.membership(0.4), 1.0);
  EXPECT_NEAR(le.membership(0.45), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(le.membership(0.6), 0.0);
  EXPECT_DOUBLE_EQ(le.membership(-50.0), 1.0);
}

TEST(KnowledgeBase, RuleActivationUsesPossibility) {
  Model m;
  const auto q = m.addQuantity("Vbe");
  Propagator p(m);
  p.addMeasurement(q, FuzzyInterval::crisp(0.7));
  p.run();

  KnowledgeBase kb;
  FuzzyRule rule;
  rule.name = "on";
  rule.conclusion = "T conducting";
  rule.antecedents.push_back({q, KnowledgeBase::atLeast(0.4, 0.1)});
  rule.certainty = 0.9;
  kb.addRule(rule);

  const auto fired = kb.evaluate(p);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired.front().conclusion, "T conducting");
  EXPECT_DOUBLE_EQ(fired.front().degree, 0.9);  // capped by certainty
}

TEST(KnowledgeBase, UnvaluedQuantityGivesZeroActivation) {
  Model m;
  const auto q = m.addQuantity("Vbe");
  Propagator p(m);
  p.run();

  KnowledgeBase kb;
  FuzzyRule rule;
  rule.name = "on";
  rule.conclusion = "T conducting";
  rule.antecedents.push_back({q, KnowledgeBase::atLeast(0.4, 0.1)});
  kb.addRule(rule);
  EXPECT_TRUE(kb.evaluate(p).empty());
}

TEST(KnowledgeBase, ConjunctionTakesMin) {
  Model m;
  const auto a = m.addQuantity("a");
  const auto b = m.addQuantity("b");
  Propagator p(m);
  p.addMeasurement(a, FuzzyInterval::crisp(0.35));  // membership 0.5 in >=0.4
  p.addMeasurement(b, FuzzyInterval::crisp(1.0));   // membership 1
  p.run();

  KnowledgeBase kb;
  FuzzyRule rule;
  rule.name = "r";
  rule.conclusion = "c";
  rule.antecedents.push_back({a, KnowledgeBase::atLeast(0.4, 0.1)});
  rule.antecedents.push_back({b, KnowledgeBase::atLeast(0.4, 0.1)});
  kb.addRule(rule);
  const auto fired = kb.evaluate(p);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired.front().degree, 0.5, 1e-9);
}

TEST(KnowledgeBase, ProductTNormMultiplies) {
  Model m;
  const auto a = m.addQuantity("a");
  Propagator p(m);
  p.addMeasurement(a, FuzzyInterval::crisp(0.35));
  p.run();

  KnowledgeBase kb(fuzzy::TNorm::kProduct);
  FuzzyRule rule;
  rule.name = "r";
  rule.conclusion = "c";
  rule.certainty = 0.8;
  rule.antecedents.push_back({a, KnowledgeBase::atLeast(0.4, 0.1)});
  kb.addRule(rule);
  const auto fired = kb.evaluate(p);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired.front().degree, 0.8 * 0.5, 1e-9);
}

TEST(KnowledgeBase, TransistorRegionRulesFromNetlist) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  KnowledgeBase kb;
  addTransistorRegionRules(kb, net, built);
  // Two rules (on/off) per transistor.
  EXPECT_EQ(kb.size(), 6u);

  // At the nominal operating point every transistor conducts.
  Propagator p(built.model);
  p.addMeasurement(built.voltage("V1"),
                   FuzzyInterval::about(built.nominalOp.nodeVoltages[net.findNode("V1")], 0.05));
  p.run();
  const auto fired = kb.evaluate(p);
  bool t2Conducting = false;
  for (const auto& f : fired) {
    if (f.conclusion == "T2 conducting" && f.degree > 0.8) t2Conducting = true;
  }
  EXPECT_TRUE(t2Conducting);
}

TEST(KnowledgeBase, DiodeRegionRules) {
  const auto net = circuit::paperFig5DiodeNetwork();
  const auto built = constraints::buildDiagnosticModel(net);
  KnowledgeBase kb;
  addDiodeRegionRules(kb, net, built);
  EXPECT_EQ(kb.size(), 2u);

  // Measure the anode well above the conduction threshold: "conducting"
  // fires, "blocking" does not.
  Propagator p(built.model);
  p.addMeasurement(built.voltage("in"), FuzzyInterval::about(0.8, 0.01));
  p.run();
  const auto fired = kb.evaluate(p);
  bool conducting = false, blocking = false;
  for (const auto& f : fired) {
    if (f.conclusion == "d1 conducting" && f.degree > 0.8) conducting = true;
    if (f.conclusion == "d1 blocking" && f.degree > 0.1) blocking = true;
  }
  EXPECT_TRUE(conducting);
  EXPECT_FALSE(blocking);
}

TEST(KnowledgeBase, ResultsSortedByDegree) {
  Model m;
  const auto a = m.addQuantity("a");
  Propagator p(m);
  p.addMeasurement(a, FuzzyInterval::crisp(0.35));
  p.run();

  KnowledgeBase kb;
  FuzzyRule weak;
  weak.name = "weak";
  weak.conclusion = "w";
  weak.certainty = 0.3;
  weak.antecedents.push_back({a, KnowledgeBase::atLeast(0.4, 0.1)});
  FuzzyRule strong;
  strong.name = "strong";
  strong.conclusion = "s";
  strong.certainty = 1.0;
  strong.antecedents.push_back({a, KnowledgeBase::atLeast(0.3, 0.1)});
  kb.addRule(weak);
  kb.addRule(strong);
  const auto fired = kb.evaluate(p);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired.front().rule, "strong");
}

}  // namespace
}  // namespace flames::diagnosis
