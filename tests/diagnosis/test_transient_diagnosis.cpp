#include "diagnosis/transient_diagnosis.h"

#include <gtest/gtest.h>

#include "circuit/fault.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

// Two-stage buffered RC with distinct time constants (tau1 = 1 ms,
// tau2 = 0.2 ms in V/kOhm/uF units).
Netlist twoStageRc() {
  Netlist n;
  n.addVSource("Vin", "in", "0", 0.0);
  n.addResistor("R1", "in", "m", 1.0, 0.02);
  n.addCapacitor("C1", "m", "0", 1.0, 0.05);
  n.addGain("buf", "m", "b", 1.0, 0.0);
  n.addResistor("R2", "b", "out", 2.0, 0.02);
  n.addCapacitor("C2", "out", "0", 0.1, 0.05);
  return n;
}

std::vector<StepProbe> standardProbes() {
  return {{"m", StepFeature::kRiseTime},
          {"m", StepFeature::kFinalValue},
          {"out", StepFeature::kRiseTime},
          {"out", StepFeature::kFinalValue}};
}

TransientDiagnosisOptions fastOptions() {
  TransientDiagnosisOptions o;
  o.transient.timeStep = 0.02;
  o.duration = 40.0;  // long enough for 5 tau even under a 4x drift
  return o;
}

void measureBoard(TransientDiagnosisEngine& engine, const Netlist& nominal,
                  const std::vector<Fault>& faults) {
  const Netlist board = circuit::applyFaults(nominal, faults);
  for (const StepProbe& p : standardProbes()) {
    const auto v = engine.simulateFeature(board, p);
    ASSERT_TRUE(v.has_value()) << TransientDiagnosisEngine::quantityName(p);
    engine.measure(p, *v);
  }
}

TEST(TransientDiagnosis, QuantityNaming) {
  EXPECT_EQ(TransientDiagnosisEngine::quantityName(
                {"out", StepFeature::kRiseTime}),
            "rise(V(out))");
  EXPECT_EQ(TransientDiagnosisEngine::quantityName(
                {"m", StepFeature::kFinalValue}),
            "final(V(m))");
  EXPECT_EQ(stepFeatureName(StepFeature::kRiseTime), "rise");
  EXPECT_EQ(stepFeatureName(StepFeature::kFinalValue), "final");
}

TEST(TransientDiagnosis, HealthyBoardQuiet) {
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", standardProbes(), fastOptions());
  measureBoard(engine, net, {});
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.propagationCompleted);
  EXPECT_FALSE(report.faultDetected());
}

TEST(TransientDiagnosis, DriftedCapacitorCaughtByRiseTime) {
  // C1 drifted x3: DC levels unchanged (final values identical), only the
  // rise times move — the scenario DC diagnosis is blind to.
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", standardProbes(), fastOptions());
  measureBoard(engine, net, {Fault::paramScale("C1", 3.0)});
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  // The rise-time probes conflict; the final-value probes corroborate.
  bool riseConflict = false, finalConflict = false;
  for (const auto& m : report.measurements) {
    if (m.dc < 0.5 && m.quantity.rfind("rise", 0) == 0) riseConflict = true;
    if (m.dc < 0.5 && m.quantity.rfind("final", 0) == 0) finalConflict = true;
  }
  EXPECT_TRUE(riseConflict);
  EXPECT_FALSE(finalConflict);
  // C1 must be implicated.
  EXPECT_GE(report.suspicion.count("C1"), 1u);
}

TEST(TransientDiagnosis, OpenCapacitorIsolatedWithMode) {
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", standardProbes(), fastOptions());
  measureBoard(engine, net, {Fault::open("C2")});
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"C2"});
  ASSERT_TRUE(report.candidates.front().modeMatch.has_value());
  EXPECT_EQ(report.candidates.front().modeMatch->mode, "open");
}

TEST(TransientDiagnosis, StageDiscrimination) {
  // C2 faults must not put stage-1-only candidates on top.
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", standardProbes(), fastOptions());
  measureBoard(engine, net, {Fault::paramScale("C2", 4.0)});
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  const auto& top = report.candidates.front().components;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_TRUE(top.front() == "C2" || top.front() == "R2") << top.front();
}

TEST(TransientDiagnosis, MeasureValidatesProbe) {
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", standardProbes(), fastOptions());
  EXPECT_THROW(engine.measure({"bogus", StepFeature::kRiseTime}, 1.0),
               std::out_of_range);
}

TEST(TransientDiagnosis, ClearMeasurementsResets) {
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", standardProbes(), fastOptions());
  measureBoard(engine, net, {Fault::open("C2")});
  engine.clearMeasurements();
  measureBoard(engine, net, {});
  EXPECT_FALSE(engine.diagnose().faultDetected());
}

}  // namespace
}  // namespace flames::diagnosis
