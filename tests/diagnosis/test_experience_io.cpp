#include "diagnosis/experience_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef FLAMES_EXPERIENCE_GOLDEN_DIR
#error "FLAMES_EXPERIENCE_GOLDEN_DIR must point at tests/diagnosis/golden"
#endif

namespace flames::diagnosis {
namespace {

ExperienceBase sampleBase() {
  ExperienceBase eb;
  eb.recordSuccess({{"V(V1)", -0.2}, {"V(Vs)", -0.4}}, "R2", "short");
  eb.recordSuccess({{"V(V1)", 0.9}}, "R3", "open");
  eb.recordSuccess({{"V(V1)", 0.9}}, "R3", "open");  // reinforce
  return eb;
}

TEST(ExperienceIo, RoundTripPreservesRules) {
  const ExperienceBase original = sampleBase();
  std::stringstream stream;
  saveExperience(original, stream);

  ExperienceBase restored;
  const std::size_t n = loadExperience(restored, stream);
  EXPECT_EQ(n, original.size());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SymptomRule& a = original.rules()[i];
    const SymptomRule& b = restored.rules()[i];
    EXPECT_EQ(a.component, b.component);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_DOUBLE_EQ(a.certainty, b.certainty);
    EXPECT_EQ(a.confirmations, b.confirmations);
    ASSERT_EQ(a.symptoms.size(), b.symptoms.size());
    for (std::size_t s = 0; s < a.symptoms.size(); ++s) {
      EXPECT_EQ(a.symptoms[s].quantity, b.symptoms[s].quantity);
      EXPECT_DOUBLE_EQ(a.symptoms[s].signedDc, b.symptoms[s].signedDc);
    }
  }
}

TEST(ExperienceIo, RestoredBaseMatchesLikeOriginal) {
  const ExperienceBase original = sampleBase();
  std::stringstream stream;
  saveExperience(original, stream);
  ExperienceBase restored;
  loadExperience(restored, stream);

  const std::vector<Symptom> probe = {{"V(V1)", -0.2}, {"V(Vs)", -0.4}};
  const auto a = original.match(probe);
  const auto b = restored.match(probe);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].component, b[i].component);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(ExperienceIo, EmptyBaseRoundTrip) {
  ExperienceBase empty;
  std::stringstream stream;
  saveExperience(empty, stream);
  ExperienceBase restored;
  EXPECT_EQ(loadExperience(restored, stream), 0u);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(ExperienceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# header\n\nrule R1 open 0.5 1 1\nsym V(a) -0.5\n";
  ExperienceBase base;
  EXPECT_EQ(loadExperience(base, stream), 1u);
  EXPECT_EQ(base.rules().front().component, "R1");
}

TEST(ExperienceIo, MalformedInputThrows) {
  {
    std::stringstream bad;
    bad << "bogus line\n";
    ExperienceBase base;
    EXPECT_THROW(loadExperience(base, bad), std::runtime_error);
  }
  {
    std::stringstream truncated;
    truncated << "rule R1 open 0.5 1 2\nsym V(a) -0.5\n";  // missing symptom
    ExperienceBase base;
    EXPECT_THROW(loadExperience(base, truncated), std::runtime_error);
  }
  {
    std::stringstream badSym;
    badSym << "rule R1 open 0.5 1 1\nnotsym V(a) -0.5\n";
    ExperienceBase base;
    EXPECT_THROW(loadExperience(base, badSym), std::runtime_error);
  }
}

TEST(ExperienceIo, FileRoundTrip) {
  const std::string path = "/tmp/flames_experience_test.txt";
  const ExperienceBase original = sampleBase();
  saveExperienceFile(original, path);
  ExperienceBase restored;
  EXPECT_EQ(loadExperienceFile(restored, path), original.size());
  std::remove(path.c_str());
}

TEST(ExperienceIo, MissingFileThrows) {
  ExperienceBase base;
  EXPECT_THROW(loadExperienceFile(base, "/nonexistent/dir/x.txt"),
               std::runtime_error);
  EXPECT_THROW(saveExperienceFile(base, "/nonexistent/dir/x.txt"),
               std::runtime_error);
}

TEST(ExperienceIo, LoadIfExistsTreatsMissingAsFirstRun) {
  ExperienceBase base;
  const auto n =
      loadExperienceFileIfExists(base, "/tmp/flames_no_such_experience.txt");
  EXPECT_FALSE(n.has_value());
  EXPECT_EQ(base.size(), 0u);
}

TEST(ExperienceIo, LoadIfExistsLoadsExistingFile) {
  const std::string path = "/tmp/flames_experience_ifexists_test.txt";
  saveExperienceFile(sampleBase(), path);
  ExperienceBase restored;
  const auto n = loadExperienceFileIfExists(restored, path);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, sampleBase().size());
  std::remove(path.c_str());
}

TEST(ExperienceIo, LoadIfExistsStillThrowsOnCorruptFile) {
  // An existing-but-unparseable rule base must abort, not silently start
  // fresh: the caller would otherwise overwrite curated rules on save.
  const std::string path = "/tmp/flames_experience_corrupt_test.txt";
  {
    std::ofstream os(path);
    os << "rule R1 open not_a_number\n";
  }
  ExperienceBase base;
  EXPECT_THROW((void)loadExperienceFileIfExists(base, path),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(ExperienceIo, SaveWritesVersionedHeader) {
  std::stringstream stream;
  saveExperience(sampleBase(), stream);
  std::string first;
  std::getline(stream, first);
  EXPECT_EQ(first, "# FLAMES experience base v2");
}

TEST(ExperienceIo, SeventeenDigitFidelity) {
  // Certainties and signed Dc values round-trip bit-exactly (%.17g), so
  // repeated save/load cycles can never drift a rule's strength.
  ExperienceBase original;
  SymptomRule rule;
  rule.component = "R7";
  rule.mode = "drift";
  rule.certainty = 0.1 + 0.2;  // 0.30000000000000004
  rule.confirmations = 3;
  rule.symptoms = {{"V(x)", 1.0 / 3.0, 1}, {"V(y)", -2.0 / 7.0, -1}};
  original.restoreRule(rule);

  std::stringstream stream;
  saveExperience(original, stream);
  ExperienceBase restored;
  ASSERT_EQ(loadExperience(restored, stream), 1u);
  const SymptomRule& r = restored.rules().front();
  EXPECT_EQ(r.certainty, 0.1 + 0.2);  // exact, not just approximate
  EXPECT_EQ(r.symptoms[0].signedDc, 1.0 / 3.0);
  EXPECT_EQ(r.symptoms[1].signedDc, -2.0 / 7.0);
  EXPECT_EQ(r.symptoms[0].direction, 1);
  EXPECT_EQ(r.symptoms[1].direction, -1);
}

TEST(ExperienceIo, GoldenV2FileRoundTrip) {
  // The committed golden pins the v2 byte format: load it, re-save it, and
  // the bytes must match exactly. Refresh intentionally-changed formats
  // with FLAMES_UPDATE_GOLDEN=1 and review the diff.
  const std::string path =
      std::string(FLAMES_EXPERIENCE_GOLDEN_DIR) + "/experience_v2.txt";
  ExperienceBase base;
  SymptomRule rule;
  rule.component = "R2";
  rule.mode = "short";
  rule.certainty = 0.65;
  rule.confirmations = 2;
  rule.symptoms = {{"V(V1)", 0.1 + 0.2, 1}, {"V(Vs)", -1.0 / 3.0, -1}};
  base.restoreRule(rule);
  std::stringstream stream;
  saveExperience(base, stream);
  const std::string actual = stream.str();

  if (std::getenv("FLAMES_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << path << " missing - run with FLAMES_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str());

  // And the golden bytes load back to the exact same base.
  std::stringstream replay(expected.str());
  ExperienceBase restored;
  ASSERT_EQ(loadExperience(restored, replay), 1u);
  EXPECT_EQ(restored.rules().front().certainty, 0.65);
  EXPECT_EQ(restored.rules().front().symptoms[0].signedDc, 0.1 + 0.2);
}

TEST(ExperienceIo, ErrorsCarryLineNumbers) {
  {
    std::stringstream bad;
    bad << "# FLAMES experience base v2\n"
        << "rule R1 open 0.5 1 1\n"
        << "sym V(a) -0.5\n";  // v2 requires the direction column
    ExperienceBase base;
    try {
      loadExperience(base, bad);
      FAIL() << "expected ExperienceFormatError";
    } catch (const ExperienceFormatError& e) {
      EXPECT_EQ(e.line(), 3u);
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("direction"), std::string::npos);
    }
  }
  {
    std::stringstream bad;
    bad << "rule R1 open not_a_number 1 0\n";
    ExperienceBase base;
    try {
      loadExperience(base, bad);
      FAIL() << "expected ExperienceFormatError";
    } catch (const ExperienceFormatError& e) {
      EXPECT_EQ(e.line(), 1u);
    }
  }
}

TEST(ExperienceIo, V1FilesLoadWithLenientDirection) {
  // Pre-v2 files have no direction column; it defaults to 0 on load.
  std::stringstream v1;
  v1 << "# FLAMES experience base v1\n"
     << "rule R1 open 0.5 1 1\n"
     << "sym V(a) -0.5\n";
  ExperienceBase base;
  ASSERT_EQ(loadExperience(base, v1), 1u);
  EXPECT_EQ(base.rules().front().symptoms.front().direction, 0);
}

TEST(ExperienceIo, FutureFormatVersionRejected) {
  std::stringstream future;
  future << "# FLAMES experience base v3\n";
  ExperienceBase base;
  try {
    loadExperience(base, future);
    FAIL() << "expected ExperienceFormatError";
  } catch (const ExperienceFormatError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos);
  }
}

}  // namespace
}  // namespace flames::diagnosis
