#include "diagnosis/experience_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace flames::diagnosis {
namespace {

ExperienceBase sampleBase() {
  ExperienceBase eb;
  eb.recordSuccess({{"V(V1)", -0.2}, {"V(Vs)", -0.4}}, "R2", "short");
  eb.recordSuccess({{"V(V1)", 0.9}}, "R3", "open");
  eb.recordSuccess({{"V(V1)", 0.9}}, "R3", "open");  // reinforce
  return eb;
}

TEST(ExperienceIo, RoundTripPreservesRules) {
  const ExperienceBase original = sampleBase();
  std::stringstream stream;
  saveExperience(original, stream);

  ExperienceBase restored;
  const std::size_t n = loadExperience(restored, stream);
  EXPECT_EQ(n, original.size());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SymptomRule& a = original.rules()[i];
    const SymptomRule& b = restored.rules()[i];
    EXPECT_EQ(a.component, b.component);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_DOUBLE_EQ(a.certainty, b.certainty);
    EXPECT_EQ(a.confirmations, b.confirmations);
    ASSERT_EQ(a.symptoms.size(), b.symptoms.size());
    for (std::size_t s = 0; s < a.symptoms.size(); ++s) {
      EXPECT_EQ(a.symptoms[s].quantity, b.symptoms[s].quantity);
      EXPECT_DOUBLE_EQ(a.symptoms[s].signedDc, b.symptoms[s].signedDc);
    }
  }
}

TEST(ExperienceIo, RestoredBaseMatchesLikeOriginal) {
  const ExperienceBase original = sampleBase();
  std::stringstream stream;
  saveExperience(original, stream);
  ExperienceBase restored;
  loadExperience(restored, stream);

  const std::vector<Symptom> probe = {{"V(V1)", -0.2}, {"V(Vs)", -0.4}};
  const auto a = original.match(probe);
  const auto b = restored.match(probe);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].component, b[i].component);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(ExperienceIo, EmptyBaseRoundTrip) {
  ExperienceBase empty;
  std::stringstream stream;
  saveExperience(empty, stream);
  ExperienceBase restored;
  EXPECT_EQ(loadExperience(restored, stream), 0u);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(ExperienceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# header\n\nrule R1 open 0.5 1 1\nsym V(a) -0.5\n";
  ExperienceBase base;
  EXPECT_EQ(loadExperience(base, stream), 1u);
  EXPECT_EQ(base.rules().front().component, "R1");
}

TEST(ExperienceIo, MalformedInputThrows) {
  {
    std::stringstream bad;
    bad << "bogus line\n";
    ExperienceBase base;
    EXPECT_THROW(loadExperience(base, bad), std::runtime_error);
  }
  {
    std::stringstream truncated;
    truncated << "rule R1 open 0.5 1 2\nsym V(a) -0.5\n";  // missing symptom
    ExperienceBase base;
    EXPECT_THROW(loadExperience(base, truncated), std::runtime_error);
  }
  {
    std::stringstream badSym;
    badSym << "rule R1 open 0.5 1 1\nnotsym V(a) -0.5\n";
    ExperienceBase base;
    EXPECT_THROW(loadExperience(base, badSym), std::runtime_error);
  }
}

TEST(ExperienceIo, FileRoundTrip) {
  const std::string path = "/tmp/flames_experience_test.txt";
  const ExperienceBase original = sampleBase();
  saveExperienceFile(original, path);
  ExperienceBase restored;
  EXPECT_EQ(loadExperienceFile(restored, path), original.size());
  std::remove(path.c_str());
}

TEST(ExperienceIo, MissingFileThrows) {
  ExperienceBase base;
  EXPECT_THROW(loadExperienceFile(base, "/nonexistent/dir/x.txt"),
               std::runtime_error);
  EXPECT_THROW(saveExperienceFile(base, "/nonexistent/dir/x.txt"),
               std::runtime_error);
}

TEST(ExperienceIo, LoadIfExistsTreatsMissingAsFirstRun) {
  ExperienceBase base;
  const auto n =
      loadExperienceFileIfExists(base, "/tmp/flames_no_such_experience.txt");
  EXPECT_FALSE(n.has_value());
  EXPECT_EQ(base.size(), 0u);
}

TEST(ExperienceIo, LoadIfExistsLoadsExistingFile) {
  const std::string path = "/tmp/flames_experience_ifexists_test.txt";
  saveExperienceFile(sampleBase(), path);
  ExperienceBase restored;
  const auto n = loadExperienceFileIfExists(restored, path);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, sampleBase().size());
  std::remove(path.c_str());
}

TEST(ExperienceIo, LoadIfExistsStillThrowsOnCorruptFile) {
  // An existing-but-unparseable rule base must abort, not silently start
  // fresh: the caller would otherwise overwrite curated rules on save.
  const std::string path = "/tmp/flames_experience_corrupt_test.txt";
  {
    std::ofstream os(path);
    os << "rule R1 open not_a_number\n";
  }
  ExperienceBase base;
  EXPECT_THROW((void)loadExperienceFileIfExists(base, path),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flames::diagnosis
