#include "diagnosis/session.h"

#include <gtest/gtest.h>

#include <memory>

#include "circuit/catalog.h"
#include "circuit/fault.h"
#include "circuit/mna.h"
#include "workload/generators.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

// Oracle reading the faulted board.
ProbeOracle oracleFor(const Netlist& nominal, const std::vector<Fault>& faults,
                      std::size_t* probeCounter = nullptr) {
  auto faulted =
      std::make_shared<Netlist>(circuit::applyFaults(nominal, faults));
  auto op = std::make_shared<circuit::OperatingPoint>(
      circuit::DcSolver(*faulted).solve());
  return [faulted, op, probeCounter](const std::string& node) {
    if (probeCounter != nullptr) ++*probeCounter;
    return op->v(faulted->findNode(node));
  };
}

TEST(Session, HealthyBoardStopsImmediately) {
  const auto net = workload::dividerCascade(3);
  FlamesEngine engine(net);
  const auto oracle = oracleFor(net, {});
  engine.measure("t3", oracle("t3"));
  auto result = runGuidedSession(engine, {{"m1"}, {"m2"}, {"m3"}}, oracle);
  EXPECT_EQ(result.outcome, SessionOutcome::kNoFault);
  EXPECT_EQ(result.probesUsed, 0u);
  ASSERT_EQ(result.trail.size(), 1u);
  EXPECT_TRUE(result.trail.front().probedNode.empty());
}

TEST(Session, IsolatesDeepFaultWithGuidedProbes) {
  const auto net = workload::dividerCascade(4);
  FlamesEngine engine(net);
  const Fault fault = Fault::open("Rb3");
  const auto oracle = oracleFor(net, {fault});
  engine.measure("t4", oracle("t4"));  // output only: ambiguous

  auto result = runGuidedSession(
      engine, {{"m1"}, {"m2"}, {"m3"}, {"m4"}, {"t1"}, {"t2"}, {"t3"}},
      oracle);
  // Rb3-open and Rt3-short are voltage-indistinguishable (both make stage 3
  // a straight wire), so the honest outcome is either isolation or a
  // two-way ambiguity with the culprit in front.
  EXPECT_TRUE(result.outcome == SessionOutcome::kIsolated ||
              result.outcome == SessionOutcome::kAmbiguous);
  ASSERT_FALSE(result.finalReport.candidates.empty());
  bool culpritOnTop = false;
  for (std::size_t i = 0;
       i < std::min<std::size_t>(2, result.finalReport.candidates.size());
       ++i) {
    for (const auto& c : result.finalReport.candidates[i].components) {
      if (c == "Rb3") culpritOnTop = true;
    }
  }
  EXPECT_TRUE(culpritOnTop);
  EXPECT_GT(result.probesUsed, 0u);
  // Trail records one step per probe plus the initial diagnosis.
  EXPECT_EQ(result.trail.size(), result.probesUsed + 1);
}

TEST(Session, ProbeBudgetRespected) {
  const auto net = workload::dividerCascade(4);
  FlamesEngine engine(net);
  const auto oracle = oracleFor(net, {Fault::open("Rb3")});
  engine.measure("t4", oracle("t4"));

  SessionOptions opts;
  opts.maxProbes = 1;
  opts.plausibilityThreshold = 1.01;  // unreachable: force budget exit
  auto result = runGuidedSession(
      engine, {{"m1"}, {"m2"}, {"m3"}, {"m4"}}, oracle, opts);
  EXPECT_EQ(result.outcome, SessionOutcome::kProbesSpent);
  EXPECT_EQ(result.probesUsed, 1u);
}

TEST(Session, AmbiguousWhenProbesRunOut) {
  const auto net = workload::dividerCascade(3);
  FlamesEngine engine(net);
  const auto oracle = oracleFor(net, {Fault::open("Rb2")});
  engine.measure("t3", oracle("t3"));

  SessionOptions opts;
  opts.plausibilityThreshold = 1.01;  // never satisfied
  auto result = runGuidedSession(engine, {{"m1"}}, oracle, opts);
  EXPECT_EQ(result.outcome, SessionOutcome::kAmbiguous);
  EXPECT_EQ(result.probesUsed, 1u);
}

TEST(Session, Fig6AmplifierGuidedIsolation) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  FlamesEngine engine(net);
  const Fault fault = Fault::open("R3");
  const auto oracle = oracleFor(net, {fault});
  engine.measure("Vs", oracle("Vs"));  // symptom at the output only

  auto result = runGuidedSession(
      engine, {{"V1"}, {"V2"}, {"N1"}, {"E2"}}, oracle);
  // Several stage-1 explanations can co-explain the voltages; require the
  // session to finish with stage-1 candidates leading (isolated or an
  // honest tie among them).
  EXPECT_TRUE(result.outcome == SessionOutcome::kIsolated ||
              result.outcome == SessionOutcome::kAmbiguous);
  ASSERT_FALSE(result.finalReport.candidates.empty());
  const auto best = result.finalReport.bestCandidate();
  ASSERT_EQ(best.size(), 1u);
  EXPECT_TRUE(best.front() == "R3" || best.front() == "R1" ||
              best.front() == "R2" || best.front() == "T1")
      << best.front();
}

TEST(Session, OutcomeNames) {
  EXPECT_EQ(sessionOutcomeName(SessionOutcome::kNoFault), "no-fault");
  EXPECT_EQ(sessionOutcomeName(SessionOutcome::kIsolated), "isolated");
  EXPECT_EQ(sessionOutcomeName(SessionOutcome::kAmbiguous), "ambiguous");
  EXPECT_EQ(sessionOutcomeName(SessionOutcome::kProbesSpent), "probes-spent");
}

}  // namespace
}  // namespace flames::diagnosis
