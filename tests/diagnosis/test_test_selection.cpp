#include "diagnosis/test_selection.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

Netlist ladder() {
  // in -> R1 -> a -> R2 -> b -> R3 -> gnd: probing a or b discriminates.
  Netlist n;
  n.addVSource("V1", "in", "0", 9.0);
  n.addResistor("R1", "in", "a", 1.0, 0.05);
  n.addResistor("R2", "a", "b", 1.0, 0.05);
  n.addResistor("R3", "b", "0", 1.0, 0.05);
  return n;
}

TEST(TestSelector, EstimationsDefaultToCorrect) {
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({});
  ASSERT_EQ(est.size(), n.components().size());
  for (const auto& e : est) EXPECT_EQ(e.term, "correct");
}

TEST(TestSelector, SuspicionMapsToLinguisticTerms) {
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({{"R1", 1.0}, {"R2", 0.5}});
  for (const auto& e : est) {
    if (e.component == "R1") { EXPECT_EQ(e.term, "faulty"); }
    if (e.component == "R2") { EXPECT_EQ(e.term, "unknown"); }
    if (e.component == "R3") { EXPECT_EQ(e.term, "correct"); }
  }
}

TEST(TestSelector, SystemEntropyHigherWithMoreUncertainty) {
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto certain = sel.estimationsFromSuspicion({});
  const auto uncertain =
      sel.estimationsFromSuspicion({{"R1", 0.5}, {"R2", 0.5}, {"R3", 0.5}});
  EXPECT_GT(sel.systemEntropy(uncertain).centroid(),
            sel.systemEntropy(certain).centroid());
}

TEST(TestSelector, DiscriminatingProbeWins) {
  // Suspects R1 and R3 with open-fault hypotheses. Probing node "a":
  // R1-open gives ~0 V, R3-open gives ~9 V — two clusters, big entropy
  // drop. A probe at "in" reads ~9 V under both — one cluster, no
  // discrimination.
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({{"R1", 0.6}, {"R3", 0.6}});
  const std::map<std::string, Fault> hyp = {{"R1", Fault::open("R1")},
                                            {"R3", Fault::open("R3")}};
  const auto ranked = sel.rankTests({{"a"}, {"in"}}, est, hyp);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().node, "a");
  EXPECT_EQ(ranked.front().outcomeClusters, 2u);
  EXPECT_LT(ranked.front().score, ranked.back().score);
}

TEST(TestSelector, CostPenalisesExpensiveProbes) {
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({{"R1", 0.6}, {"R3", 0.6}});
  const std::map<std::string, Fault> hyp = {{"R1", Fault::open("R1")},
                                            {"R3", Fault::open("R3")}};
  // Same node, hugely different cost: expensive one ranks last.
  const auto ranked = sel.rankTests({{"a", 1.0}, {"b", 100.0}}, est, hyp);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().node, "a");
}

TEST(TestSelector, NoSuspectsMeansCurrentEntropy) {
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({});
  const auto ranked = sel.rankTests({{"a"}}, est, {});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked.front().outcomeClusters, 0u);
}

TEST(TestSelector, UnsimulatableHypothesisStillRanked) {
  const Netlist n = ladder();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({{"R1", 0.6}, {"R2", 0.6}});
  // R2's hypothesis points at a nonexistent component: simulation fails,
  // R2 stays indistinguishable but ranking must not crash.
  std::map<std::string, Fault> hyp = {{"R1", Fault::open("R1")},
                                      {"R2", Fault::open("nonexistent")}};
  const auto ranked = sel.rankTests({{"a"}}, est, hyp);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_GE(ranked.front().outcomeClusters, 1u);
}

TEST(TestSelector, Fig6ProbeRankingPrefersStageBoundary) {
  // Suspects confined to stage 1: probing V1 (the stage-1 output) must be
  // at least as informative as probing the far-away output Vs.
  const Netlist n = circuit::paperFig6ThreeStageAmp();
  TestSelector sel(n);
  const auto est = sel.estimationsFromSuspicion({{"R2", 0.7}, {"R3", 0.7}});
  const std::map<std::string, Fault> hyp = {
      {"R2", Fault::shortCircuit("R2")}, {"R3", Fault::open("R3")}};
  const auto ranked = sel.rankTests({{"V1"}, {"Vs"}}, est, hyp);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_LE(ranked.front().score, ranked.back().score);
  EXPECT_EQ(ranked.front().node, "V1");
}

}  // namespace
}  // namespace flames::diagnosis
