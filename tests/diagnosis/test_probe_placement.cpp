#include "diagnosis/probe_placement.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"
#include "workload/generators.h"

namespace flames::diagnosis {
namespace {

using circuit::Fault;
using circuit::Netlist;

TEST(ProbePlacement, CascadeNeedsPerStageProbes) {
  // Opens in the bottom resistors of a 3-stage cascade: a single output
  // probe detects everything but cannot separate the stages; the planner
  // must pick internal nodes until the pairs separate.
  const auto net = workload::dividerCascade(3);
  const std::vector<Fault> faults = {Fault::open("Rb1"), Fault::open("Rb2"),
                                     Fault::open("Rb3")};
  const auto placement = placeProbes(net, faults, 3);
  EXPECT_TRUE(placement.undetectable.empty());
  EXPECT_TRUE(placement.ambiguous.empty());
  EXPECT_GE(placement.probes.size(), 2u);
  EXPECT_LE(placement.probes.size(), 3u);
}

TEST(ProbePlacement, BudgetLimitsSelection) {
  const auto net = workload::dividerCascade(3);
  const std::vector<Fault> faults = {Fault::open("Rb1"), Fault::open("Rb2"),
                                     Fault::open("Rb3")};
  const auto placement = placeProbes(net, faults, 1);
  EXPECT_EQ(placement.probes.size(), 1u);
  // One probe cannot split three single-stage faults in a cascade where
  // downstream nodes see compounded deviations... unless deviations differ
  // in magnitude; the planner reports whatever remains ambiguous.
  EXPECT_LE(placement.ambiguous.size(), 3u);
}

TEST(ProbePlacement, UndetectableFaultReported) {
  // The Fig. 5 diode pins n1: a drifted r1 moves no node voltage at all.
  const auto net = circuit::paperFig5DiodeNetwork();
  const std::vector<Fault> faults = {Fault::paramScale("r1", 0.5),
                                     Fault::shortCircuit("d1")};
  const auto placement = placeProbes(net, faults, 2);
  ASSERT_EQ(placement.undetectable.size(), 1u);
  EXPECT_EQ(placement.undetectable.front(), 0u);  // the r1 drift
}

TEST(ProbePlacement, ScoresCoverAllCandidates) {
  const auto net = workload::dividerCascade(2);
  const std::vector<Fault> faults = {Fault::open("Rb1")};
  const auto placement = placeProbes(net, faults, 1);
  // Every non-ground node is scored.
  EXPECT_EQ(placement.scores.size(), net.nodeCount() - 1);
  bool someDetect = false;
  for (const auto& s : placement.scores) {
    if (s.detects > 0) someDetect = true;
  }
  EXPECT_TRUE(someDetect);
}

TEST(ProbePlacement, RestrictedCandidateSetHonoured) {
  const auto net = workload::dividerCascade(3);
  const std::vector<Fault> faults = {Fault::open("Rb1"), Fault::open("Rb3")};
  const auto placement =
      placeProbes(net, faults, 2, {"t1", "t3"});
  for (const auto& p : placement.probes) {
    EXPECT_TRUE(p == "t1" || p == "t3") << p;
  }
}

TEST(ProbePlacement, Fig6AmplifierSingleMidStageProbeSuffices) {
  // For this defect class every fault shifts V2 (equivalently Vs) by a
  // distinct amount, so the planner needs just ONE probe where the paper's
  // protocol measures three — the design-for-test insight the module is
  // for. It must not waste the budget on redundant nodes.
  const auto net = circuit::paperFig6ThreeStageAmp();
  const std::vector<Fault> faults = {
      Fault::shortCircuit("R2"), Fault::open("R3"),
      Fault::paramScale("R5", 1.5), Fault::paramScale("R6", 0.5)};
  const auto placement = placeProbes(net, faults, 3);
  EXPECT_TRUE(placement.undetectable.empty());
  EXPECT_TRUE(placement.ambiguous.empty());
  ASSERT_EQ(placement.probes.size(), 1u);
  EXPECT_TRUE(placement.probes.front() == "V2" ||
              placement.probes.front() == "Vs")
      << placement.probes.front();
}

TEST(ProbePlacement, ZeroBudgetSelectsNothing) {
  const auto net = workload::dividerCascade(2);
  const auto placement =
      placeProbes(net, {Fault::open("Rb1")}, 0);
  EXPECT_TRUE(placement.probes.empty());
}

}  // namespace
}  // namespace flames::diagnosis
