#include "diagnosis/learning.h"

#include <gtest/gtest.h>

namespace flames::diagnosis {
namespace {

std::vector<Symptom> signatureA() {
  return {{"V(V1)", -0.2}, {"V(V2)", -0.3}, {"V(Vs)", -0.3}};
}

std::vector<Symptom> signatureB() {
  return {{"V(V1)", 1.0}, {"V(V2)", 0.9}, {"V(Vs)", 0.9}};
}

TEST(Similarity, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(ExperienceBase::similarity(signatureA(), signatureA()),
                   1.0);
}

TEST(Similarity, DifferentQuantitiesIsZero) {
  const std::vector<Symptom> other = {{"V(x)", -0.2}, {"V(V2)", -0.3},
                                      {"V(Vs)", -0.3}};
  EXPECT_DOUBLE_EQ(ExperienceBase::similarity(signatureA(), other), 0.0);
}

TEST(Similarity, SizeMismatchIsZero) {
  EXPECT_DOUBLE_EQ(
      ExperienceBase::similarity(signatureA(), {{"V(V1)", -0.2}}), 0.0);
}

TEST(Similarity, GradedByDcDistance) {
  const double sim = ExperienceBase::similarity(signatureA(), signatureB());
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 0.7);
}

TEST(ExperienceBase, LearnsNewRule) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_EQ(eb.rules().front().component, "R2");
  EXPECT_EQ(eb.rules().front().confirmations, 1);
  EXPECT_DOUBLE_EQ(eb.rules().front().certainty, 0.5);
}

TEST(ExperienceBase, ReinforcementStrengthensCertainty) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.recordSuccess(signatureA(), "R2", "short");
  ASSERT_EQ(eb.size(), 1u);  // merged, not duplicated
  EXPECT_EQ(eb.rules().front().confirmations, 2);
  EXPECT_NEAR(eb.rules().front().certainty, 0.5 + 0.5 * 0.3, 1e-9);
}

TEST(ExperienceBase, DissimilarSignaturesStayDistinct) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.recordSuccess(signatureB(), "R2", "short");
  EXPECT_EQ(eb.size(), 2u);
}

TEST(ExperienceBase, MatchRanksByScore) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.recordSuccess(signatureB(), "R3", "open");
  const auto hints = eb.match(signatureA());
  ASSERT_FALSE(hints.empty());
  EXPECT_EQ(hints.front().component, "R2");
  EXPECT_GT(hints.front().score, hints.back().score - 1e-12);
}

TEST(ExperienceBase, MatchIsOrderInsensitive) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  std::vector<Symptom> shuffled = {{"V(Vs)", -0.3}, {"V(V1)", -0.2},
                                   {"V(V2)", -0.3}};
  const auto hints = eb.match(shuffled);
  ASSERT_FALSE(hints.empty());
  EXPECT_EQ(hints.front().component, "R2");
  EXPECT_NEAR(hints.front().score, 0.5, 1e-9);
}

TEST(ExperienceBase, FailureDecaysAndEventuallyForgets) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  const double before = eb.rules().front().certainty;
  eb.recordFailure("R2", "short");
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_LT(eb.rules().front().certainty, before);
  for (int i = 0; i < 20; ++i) eb.recordFailure("R2", "short");
  EXPECT_EQ(eb.size(), 0u);  // certainty fell below the floor
}

TEST(ExperienceBase, SignatureAveragingTracksEvidence) {
  ExperienceBase eb;
  eb.recordSuccess({{"V(V1)", -0.2}}, "R2", "low");
  eb.recordSuccess({{"V(V1)", -0.4}}, "R2", "low");
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_NEAR(eb.rules().front().symptoms.front().signedDc, -0.3, 1e-9);
}

TEST(ExperienceBase, ClearEmpties) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.clear();
  EXPECT_EQ(eb.size(), 0u);
  EXPECT_TRUE(eb.match(signatureA()).empty());
}

}  // namespace
}  // namespace flames::diagnosis
