#include "diagnosis/learning.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace flames::diagnosis {
namespace {

std::vector<Symptom> signatureA() {
  return {{"V(V1)", -0.2}, {"V(V2)", -0.3}, {"V(Vs)", -0.3}};
}

std::vector<Symptom> signatureB() {
  return {{"V(V1)", 1.0}, {"V(V2)", 0.9}, {"V(Vs)", 0.9}};
}

TEST(Similarity, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(ExperienceBase::similarity(signatureA(), signatureA()),
                   1.0);
}

TEST(Similarity, DifferentQuantitiesIsZero) {
  const std::vector<Symptom> other = {{"V(x)", -0.2}, {"V(V2)", -0.3},
                                      {"V(Vs)", -0.3}};
  EXPECT_DOUBLE_EQ(ExperienceBase::similarity(signatureA(), other), 0.0);
}

TEST(Similarity, SizeMismatchIsZero) {
  EXPECT_DOUBLE_EQ(
      ExperienceBase::similarity(signatureA(), {{"V(V1)", -0.2}}), 0.0);
}

TEST(Similarity, GradedByDcDistance) {
  const double sim = ExperienceBase::similarity(signatureA(), signatureB());
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 0.7);
}

TEST(ExperienceBase, LearnsNewRule) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_EQ(eb.rules().front().component, "R2");
  EXPECT_EQ(eb.rules().front().confirmations, 1);
  EXPECT_DOUBLE_EQ(eb.rules().front().certainty, 0.5);
}

TEST(ExperienceBase, ReinforcementStrengthensCertainty) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.recordSuccess(signatureA(), "R2", "short");
  ASSERT_EQ(eb.size(), 1u);  // merged, not duplicated
  EXPECT_EQ(eb.rules().front().confirmations, 2);
  EXPECT_NEAR(eb.rules().front().certainty, 0.5 + 0.5 * 0.3, 1e-9);
}

TEST(ExperienceBase, DissimilarSignaturesStayDistinct) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.recordSuccess(signatureB(), "R2", "short");
  EXPECT_EQ(eb.size(), 2u);
}

TEST(ExperienceBase, MatchRanksByScore) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.recordSuccess(signatureB(), "R3", "open");
  const auto hints = eb.match(signatureA());
  ASSERT_FALSE(hints.empty());
  EXPECT_EQ(hints.front().component, "R2");
  EXPECT_GT(hints.front().score, hints.back().score - 1e-12);
}

TEST(ExperienceBase, MatchIsOrderInsensitive) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  std::vector<Symptom> shuffled = {{"V(Vs)", -0.3}, {"V(V1)", -0.2},
                                   {"V(V2)", -0.3}};
  const auto hints = eb.match(shuffled);
  ASSERT_FALSE(hints.empty());
  EXPECT_EQ(hints.front().component, "R2");
  EXPECT_NEAR(hints.front().score, 0.5, 1e-9);
}

TEST(ExperienceBase, FailureDecaysAndEventuallyForgets) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  const double before = eb.rules().front().certainty;
  eb.recordFailure("R2", "short");
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_LT(eb.rules().front().certainty, before);
  for (int i = 0; i < 20; ++i) eb.recordFailure("R2", "short");
  EXPECT_EQ(eb.size(), 0u);  // certainty fell below the floor
}

TEST(ExperienceBase, SignatureAveragingTracksEvidence) {
  ExperienceBase eb;
  eb.recordSuccess({{"V(V1)", -0.2}}, "R2", "low");
  eb.recordSuccess({{"V(V1)", -0.4}}, "R2", "low");
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_NEAR(eb.rules().front().symptoms.front().signedDc, -0.3, 1e-9);
}

TEST(ExperienceBase, ClearEmpties) {
  ExperienceBase eb;
  eb.recordSuccess(signatureA(), "R2", "short");
  eb.clear();
  EXPECT_EQ(eb.size(), 0u);
  EXPECT_TRUE(eb.match(signatureA()).empty());
}

// --- signature-index A/B equivalence ---
//
// The indexed match path (LearningOptions::useSignatureIndex) must be
// observationally identical to the legacy linear scan: the index only
// skips rules whose quantity sets differ, which similarity() scores 0
// anyway. Both configurations are driven with the same event stream and
// must produce hint lists that agree element by element.

ExperienceBase withIndex(bool enabled) {
  LearningOptions opts;
  opts.useSignatureIndex = enabled;
  return ExperienceBase(opts);
}

void feedStream(ExperienceBase& eb, std::uint64_t seed, std::size_t events) {
  const std::vector<std::string> comps = {"R1", "R2", "R3", "Q1"};
  const std::vector<std::string> modes = {"short", "open"};
  const std::vector<std::vector<std::string>> quantitySets = {
      {"V(V1)"},
      {"V(V1)", "V(V2)"},
      {"V(V1)", "V(V2)", "V(Vs)"},
      {"V(V2)", "V(Vs)"},
  };
  std::uint64_t state = seed * 2654435761u + 1;
  const auto next = [&state](std::uint32_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>((state >> 33) % bound);
  };
  for (std::size_t i = 0; i < events; ++i) {
    if (next(8) == 0) {
      eb.recordFailure(comps[next(4)], modes[next(2)]);
      continue;
    }
    std::vector<Symptom> sig;
    for (const std::string& q : quantitySets[next(4)]) {
      const double dc = (static_cast<double>(next(9)) - 4.0) / 4.0;
      sig.push_back({q, dc, dc < 0 ? -1 : (dc > 0 ? 1 : 0)});
    }
    eb.recordSuccess(std::move(sig), comps[next(4)], modes[next(2)]);
  }
}

TEST(SignatureIndex, MatchAgreesWithLinearScan) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ExperienceBase indexed = withIndex(true);
    ExperienceBase linear = withIndex(false);
    feedStream(indexed, seed, 60);
    feedStream(linear, seed, 60);
    ASSERT_EQ(indexed.size(), linear.size()) << "seed " << seed;

    const std::vector<std::vector<Symptom>> probes = {
        {{"V(V1)", -0.4, -1}},
        {{"V(V1)", 0.2, 1}, {"V(V2)", -0.6, -1}},
        {{"V(V1)", 0.9, 1}, {"V(V2)", 0.9, 1}, {"V(Vs)", -0.9, -1}},
        {{"V(x)", 1.0, 1}},  // quantity no rule has seen
    };
    for (const auto& probe : probes) {
      const auto a = indexed.match(probe);
      const auto b = linear.match(probe);
      ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].component, b[i].component);
        EXPECT_EQ(a[i].mode, b[i].mode);
        EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
        EXPECT_DOUBLE_EQ(a[i].certainty, b[i].certainty);
      }
    }
  }
}

TEST(SignatureIndex, SurvivesEvictionReindexing) {
  // recordFailure erases rules (shifting every later index); the indexed
  // path must keep matching exactly like the linear scan afterwards.
  ExperienceBase indexed = withIndex(true);
  ExperienceBase linear = withIndex(false);
  for (ExperienceBase* eb : {&indexed, &linear}) {
    eb->recordSuccess({{"V(V1)", -0.5, -1}}, "R1", "short");
    eb->recordSuccess({{"V(V2)", 0.5, 1}}, "R2", "open");
    eb->recordSuccess({{"V(V1)", 0.5, 1}}, "R3", "short");
    // Hammer R2's certainty below the eviction floor.
    for (int i = 0; i < 12; ++i) eb->recordFailure("R2", "open");
  }
  ASSERT_EQ(indexed.size(), linear.size());
  for (const auto& probe : {std::vector<Symptom>{{"V(V1)", -0.4, -1}},
                            std::vector<Symptom>{{"V(V2)", 0.4, 1}}}) {
    const auto a = indexed.match(probe);
    const auto b = linear.match(probe);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].component, b[i].component);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST(SignatureIndex, QuantityKeyIsOrderSensitiveOnSortedInput) {
  const std::vector<Symptom> sorted = {{"V(a)", 0.1, 1}, {"V(b)", 0.2, 1}};
  const std::vector<Symptom> other = {{"V(a)", 0.9, 1}, {"V(b)", -0.9, -1}};
  // Same quantity set => same bucket, regardless of Dc values.
  EXPECT_EQ(ExperienceBase::quantityKey(sorted),
            ExperienceBase::quantityKey(other));
  const std::vector<Symptom> different = {{"V(a)", 0.1, 1}, {"V(c)", 0.2, 1}};
  EXPECT_NE(ExperienceBase::quantityKey(sorted),
            ExperienceBase::quantityKey(different));
}

}  // namespace
}  // namespace flames::diagnosis
