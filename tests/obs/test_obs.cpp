// Registry, counter, histogram and scoped-timer semantics of flames::obs.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace obs = flames::obs;

namespace {

// Every test starts from a disabled layer and zeroed registry, and leaves
// the layer disabled (the global flag is process-wide).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setEnabled(false);
    obs::Registry::global().resetAll();
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::Registry::global().resetAll();
  }
};

TEST_F(ObsTest, DisabledByDefaultAndCountersAreNoOps) {
  EXPECT_FALSE(obs::enabled());
  obs::Counter& c = obs::counter("test.noop");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, EnabledCounterAccumulates) {
  obs::setEnabled(true);
  obs::Counter& c = obs::counter("test.accumulate");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, RegistryFindsOrCreatesStableHandles) {
  obs::Counter& a = obs::counter("test.same");
  obs::Counter& b = obs::counter("test.same");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::histogram("test.hist.same");
  obs::Histogram& hb = obs::histogram("test.hist.same");
  EXPECT_EQ(&ha, &hb);
}

TEST_F(ObsTest, RegistryListsSortedByName) {
  obs::counter("test.zz");
  obs::counter("test.aa");
  const auto counters = obs::Registry::global().counters();
  ASSERT_GE(counters.size(), 2u);
  for (std::size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1]->name(), counters[i]->name());
  }
}

TEST_F(ObsTest, HistogramTracksCountSumMinMaxMean) {
  obs::setEnabled(true);
  obs::Histogram& h = obs::histogram("test.hist.stats");
  h.record(10);
  h.record(30);
  h.record(20);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 60u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 30u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
}

TEST_F(ObsTest, HistogramIgnoresSamplesWhileDisabled) {
  obs::Histogram& h = obs::histogram("test.hist.disabled");
  h.record(1234);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(ObsTest, HistogramBucketsArePowersOfTwo) {
  obs::setEnabled(true);
  obs::Histogram& h = obs::histogram("test.hist.buckets");
  h.record(0);   // bucket 0 (bit width 0)
  h.record(1);   // bucket 1
  h.record(2);   // bucket 2: [2,4)
  h.record(3);   // bucket 2
  h.record(4);   // bucket 3: [4,8)
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 1u);
}

TEST_F(ObsTest, ScopedTimerRecordsOnlyWhenEnabled) {
  obs::Histogram& h = obs::histogram("test.timer");
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 0u);

  obs::setEnabled(true);
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST_F(ObsTest, MonotonicNanosNeverGoesBackwards) {
  std::uint64_t prev = obs::monotonicNanos();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = obs::monotonicNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST_F(ObsTest, ResetAllZeroesEverything) {
  obs::setEnabled(true);
  obs::counter("test.reset.c").add(5);
  obs::histogram("test.reset.h").record(5);
  obs::Registry::global().resetAll();
  EXPECT_EQ(obs::counter("test.reset.c").value(), 0u);
  EXPECT_EQ(obs::histogram("test.reset.h").snapshot().count, 0u);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  obs::setEnabled(true);
  obs::Counter& c = obs::counter("test.threads");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

}  // namespace
