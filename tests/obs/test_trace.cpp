// Span nesting and Chrome trace-event JSON export.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/export.h"

namespace obs = flames::obs;

namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setTracing(false);
    obs::setEnabled(false);
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::setTracing(false);
    obs::setEnabled(false);
    obs::Tracer::global().clear();
  }
};

// A minimal structural JSON check: balanced brackets/braces outside string
// literals, with escape handling. Not a full parser, but catches the
// malformed-output class of bugs (dangling commas are caught separately).
bool jsonStructureBalanced(const std::string& s) {
  int depth = 0;
  bool inString = false;
  bool escaped = false;
  for (const char c : s) {
    if (inString) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    switch (c) {
      case '"': inString = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !inString;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    obs::Span outer("outer");
    obs::Span inner("inner");
  }
  EXPECT_EQ(obs::Tracer::global().size(), 0u);
}

TEST_F(TraceTest, SettingTracingAlsoEnablesMetrics) {
  obs::setTracing(true);
  EXPECT_TRUE(obs::tracingEnabled());
  EXPECT_TRUE(obs::enabled());
}

TEST_F(TraceTest, SpansNestAndRecordDepth) {
  obs::setTracing(true);
  {
    obs::Span outer("outer");
    { obs::Span inner("inner"); }
    { obs::Span sibling("sibling"); }
  }
  const auto events = obs::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Children complete before the parent.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  // The parent's interval contains the children's.
  EXPECT_LE(events[2].startNs, events[0].startNs);
  EXPECT_GE(events[2].startNs + events[2].durationNs,
            events[1].startNs + events[1].durationNs);
}

TEST_F(TraceTest, SpanActiveReflectsTracingStateAtConstruction) {
  {
    obs::Span off("off");
    EXPECT_FALSE(off.active());
  }
  obs::setTracing(true);
  {
    obs::Span on("on");
    EXPECT_TRUE(on.active());
  }
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  obs::setTracing(true);
  {
    obs::Span outer("diagnose");
    obs::Span inner("propagation");
  }
  std::ostringstream os;
  obs::writeChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(jsonStructureBalanced(json)) << json;
  EXPECT_EQ(json.front(), '[');
  // No dangling commas before closers.
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
  // Both spans and the required trace_event keys are present.
  EXPECT_NE(json.find("\"name\":\"diagnose\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"propagation\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  std::ostringstream os;
  obs::writeChromeTrace(os);
  EXPECT_TRUE(jsonStructureBalanced(os.str()));
}

TEST_F(TraceTest, SpanNamesAreJsonEscaped) {
  obs::setTracing(true);
  { obs::Span weird("he said \"hi\"\nand left\\"); }
  std::ostringstream os;
  obs::writeChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(jsonStructureBalanced(json)) << json;
  EXPECT_NE(json.find("he said \\\"hi\\\"\\nand left\\\\"),
            std::string::npos);
}

TEST_F(TraceTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::jsonEscape("plain"), "plain");
  EXPECT_EQ(obs::jsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(TraceTest, ClearEmptiesTheTracer) {
  obs::setTracing(true);
  { obs::Span s("x"); }
  EXPECT_EQ(obs::Tracer::global().size(), 1u);
  obs::Tracer::global().clear();
  EXPECT_EQ(obs::Tracer::global().size(), 0u);
}

}  // namespace
