// End-to-end obs coverage: the propagator's step counter must agree with
// Propagator::steps() on the paper's Fig. 2 circuit, and a traced diagnose()
// must produce a span (and a StageTiming row) for every Fig. 3 pipeline
// stage.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace obs = flames::obs;

namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { resetAll(); }
  void TearDown() override { resetAll(); }
  static void resetAll() {
    obs::setTracing(false);
    obs::setEnabled(false);
    obs::Registry::global().resetAll();
    obs::Tracer::global().clear();
  }
};

TEST_F(ObsPipelineTest, StepCounterMatchesPropagatorStepsOnFig2) {
  obs::setEnabled(true);
  const auto built =
      flames::constraints::buildDiagnosticModel(flames::circuit::paperFig2Chain());
  flames::constraints::Propagator prop(built.model);
  // The masking case of Fig. 2: Vc measured at 5.6 V against nominal 6 V.
  prop.addMeasurement(built.voltage("C"),
                      flames::fuzzy::FuzzyInterval::about(5.6, 0.05));
  const std::uint64_t before = obs::counter("propagator.steps").value();
  prop.run();
  const std::uint64_t after = obs::counter("propagator.steps").value();
  EXPECT_GT(prop.steps(), 0u);
  EXPECT_EQ(after - before, prop.steps());
}

TEST_F(ObsPipelineTest, StepCounterFrozenWhileDisabled) {
  const auto built =
      flames::constraints::buildDiagnosticModel(flames::circuit::paperFig2Chain());
  flames::constraints::Propagator prop(built.model);
  prop.addMeasurement(built.voltage("C"),
                      flames::fuzzy::FuzzyInterval::about(5.6, 0.05));
  prop.run();
  EXPECT_GT(prop.steps(), 0u);
  EXPECT_EQ(obs::counter("propagator.steps").value(), 0u);
}

// One engine run on a faulted divider; cheap but exercises every stage.
flames::diagnosis::DiagnosisReport diagnoseShortedDivider() {
  flames::circuit::Netlist net;
  net.addVSource("V1", "in", "0", 10.0);
  net.addResistor("R1", "in", "mid", 1.0, 0.05);
  net.addResistor("R2", "mid", "0", 1.0, 0.05);
  flames::diagnosis::FlamesEngine engine(net);
  const flames::circuit::Netlist faulted = flames::circuit::applyFaults(
      net, {flames::circuit::Fault::shortCircuit("R2")});
  engine.measure("mid", flames::circuit::DcSolver(faulted).solve().v(
                            faulted.findNode("mid")));
  return engine.diagnose();
}

TEST_F(ObsPipelineTest, ReportStatsAbsentWhenDisabled) {
  const auto report = diagnoseShortedDivider();
  EXPECT_FALSE(report.stats.has_value());
}

const std::vector<std::string>& fig3Stages() {
  static const std::vector<std::string> kStages = {
      "propagation",     "conflict_recording", "candidate_generation",
      "refinement",      "ranking",            "rule_evaluation",
      "deviation_analysis", "experience_hints"};
  return kStages;
}

TEST_F(ObsPipelineTest, ReportStatsCoverEveryPipelineStage) {
  obs::setEnabled(true);
  const auto report = diagnoseShortedDivider();
  ASSERT_TRUE(report.stats.has_value());
  const flames::diagnosis::PipelineStats& stats = *report.stats;
  for (const std::string& stage : fig3Stages()) {
    const bool present = std::any_of(
        stats.stages.begin(), stats.stages.end(),
        [&](const flames::diagnosis::StageTiming& t) {
          return t.stage == stage;
        });
    EXPECT_TRUE(present) << "missing stage: " << stage;
  }
  EXPECT_EQ(stats.propagationSteps, report.propagationSteps);
  EXPECT_GT(stats.coincidences, 0u);
  EXPECT_GT(stats.nogoodsRecorded, 0u);
  EXPECT_GT(stats.candidatesGenerated, 0u);
  EXPECT_GT(stats.faultModeScreens, 0u);
  EXPECT_EQ(stats.dcTableRows, report.measurements.size());
  EXPECT_GT(stats.totalNanos, 0u);
  // The stats block renders in the human-readable report.
  const std::string rendered = flames::diagnosis::renderReport(report);
  EXPECT_NE(rendered.find("pipeline stats"), std::string::npos);
  EXPECT_NE(rendered.find("stage propagation"), std::string::npos);
}

TEST_F(ObsPipelineTest, TracedDiagnoseEmitsSpanPerStage) {
  obs::setTracing(true);
  (void)diagnoseShortedDivider();
  const auto events = obs::Tracer::global().snapshot();
  auto hasSpan = [&](const std::string& name) {
    return std::any_of(events.begin(), events.end(),
                       [&](const obs::TraceEvent& e) { return e.name == name; });
  };
  EXPECT_TRUE(hasSpan("diagnose"));
  EXPECT_TRUE(hasSpan("propagation.run"));
  for (const std::string& stage : fig3Stages()) {
    EXPECT_TRUE(hasSpan(stage)) << "missing span: " << stage;
  }
  // Stage spans nest under the diagnose span.
  const auto diagnose = std::find_if(
      events.begin(), events.end(),
      [](const obs::TraceEvent& e) { return e.name == "diagnose"; });
  const auto propagation = std::find_if(
      events.begin(), events.end(),
      [](const obs::TraceEvent& e) { return e.name == "propagation"; });
  ASSERT_NE(diagnose, events.end());
  ASSERT_NE(propagation, events.end());
  EXPECT_GT(propagation->depth, diagnose->depth);
}

TEST_F(ObsPipelineTest, EngineCountersAccumulateAcrossLayers) {
  obs::setEnabled(true);
  (void)diagnoseShortedDivider();
  EXPECT_GT(obs::counter("propagator.steps").value(), 0u);
  EXPECT_GT(obs::counter("propagator.entries_added").value(), 0u);
  EXPECT_GT(obs::counter("propagator.coincidences").value(), 0u);
  EXPECT_GT(obs::counter("propagator.nogoods_recorded").value(), 0u);
  EXPECT_GT(obs::counter("atms.environments_created").value(), 0u);
  EXPECT_GT(obs::counter("atms.subsumption_checks").value(), 0u);
  EXPECT_GT(obs::counter("flames.diagnose_calls").value(), 0u);
  // A fault was injected, so at least one nogood landed in a degree bucket.
  const std::uint64_t bucketed =
      obs::counter("atms.nogoods.hard").value() +
      obs::counter("atms.nogoods.strong").value() +
      obs::counter("atms.nogoods.weak").value();
  EXPECT_GT(bucketed, 0u);
  const std::string metrics = obs::renderMetrics();
  EXPECT_NE(metrics.find("propagator.steps"), std::string::npos);
  EXPECT_NE(metrics.find("propagator.queue_depth"), std::string::npos);
}

}  // namespace
