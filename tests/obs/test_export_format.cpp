// Golden-schema tests for the obs exporters: the Chrome trace_event JSON
// dialect (required keys, event phases, job tagging, monotone end
// timestamps) and the metrics JSON snapshot. These pin the *shape* of the
// output — the contract chrome://tracing, Perfetto and the bench tooling
// consume — while letting the timing values vary run to run.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::obs {
namespace {

class ExportFormatTest : public testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    setTracing(true);
  }
  void TearDown() override {
    setTracing(false);
    Tracer::global().clear();
  }
};

std::string traceJson() {
  std::ostringstream os;
  writeChromeTrace(os);
  return os.str();
}

// Splits the trace into its event object lines (skipping the metadata
// line); every event is rendered on one line.
std::vector<std::string> eventLines(const std::string& json) {
  std::vector<std::string> out;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("{\"name\":", 0) == 0 &&
        line.find("\"ph\":\"M\"") == std::string::npos) {
      out.push_back(line);
    }
  }
  return out;
}

TEST_F(ExportFormatTest, TraceIsAJsonArrayWithProcessMetadata) {
  { Span s("alpha"); }
  const std::string json = traceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  EXPECT_NE(json.find(R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"flames"}})"), std::string::npos);
}

TEST_F(ExportFormatTest, EventsCarryTheRequiredKeysAndPhase) {
  {
    Span outer("diagnose");
    Span inner("propagate");
  }
  const std::vector<std::string> events = eventLines(traceJson());
  ASSERT_EQ(events.size(), 2u);
  for (const std::string& e : events) {
    for (const char* key :
         {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"pid\":1", "\"tid\":",
          "\"ts\":", "\"dur\":", "\"args\":{\"depth\":"}) {
      EXPECT_NE(e.find(key), std::string::npos) << key << " missing in " << e;
    }
  }
  // Spans record on destruction: the inner span ends first.
  EXPECT_NE(events[0].find("\"name\":\"propagate\""), std::string::npos);
  EXPECT_NE(events[1].find("\"name\":\"diagnose\""), std::string::npos);
}

TEST_F(ExportFormatTest, EndTimestampsAreMonotone) {
  for (int i = 0; i < 4; ++i) {
    Span a("stage");
    Span b("substage");
  }
  double prevEnd = 0.0;
  for (const std::string& e : eventLines(traceJson())) {
    double ts = 0.0, dur = 0.0;
    ASSERT_EQ(std::sscanf(e.c_str() + e.find("\"ts\":"), "\"ts\":%lf", &ts),
              1);
    ASSERT_EQ(
        std::sscanf(e.c_str() + e.find("\"dur\":"), "\"dur\":%lf", &dur), 1);
    const double end = ts + dur;
    EXPECT_GE(end + 1e-6, prevEnd)
        << "events must be recorded in completion order";
    prevEnd = end;
  }
}

TEST_F(ExportFormatTest, JobScopeTagsSpansWithTheJobId) {
  {
    JobScope job(17);
    Span tagged("inside-job");
  }
  { Span untagged("outside-job"); }
  const std::vector<std::string> events = eventLines(traceJson());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].find("\"job\":17"), std::string::npos);
  EXPECT_EQ(events[1].find("\"job\":"), std::string::npos)
      << "spans outside a JobScope must not carry a job key";
}

TEST_F(ExportFormatTest, JobScopesNestInnermostWins) {
  EXPECT_EQ(JobScope::current(), 0u);
  {
    JobScope outer(3);
    EXPECT_EQ(JobScope::current(), 3u);
    {
      JobScope inner(4);
      EXPECT_EQ(JobScope::current(), 4u);
      Span s("inner-span");
    }
    EXPECT_EQ(JobScope::current(), 3u);
  }
  EXPECT_EQ(JobScope::current(), 0u);
  const std::vector<std::string> events = eventLines(traceJson());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"job\":4"), std::string::npos);
}

TEST_F(ExportFormatTest, NamesAreJsonEscaped) {
  { Span s("weird \"name\"\twith\nescapes"); }
  const std::string json = traceJson();
  EXPECT_NE(json.find(R"(weird \"name\"\twith\nescapes)"), std::string::npos);
}

TEST(MetricsJson, SnapshotHasTheDocumentedShape) {
  Registry& reg = Registry::global();
  reg.resetAll();
  setEnabled(true);
  reg.counter("test.export.alpha").add(3);
  reg.counter("test.export.alpha").add(2);
  reg.histogram("test.export.lat").record(10);
  reg.histogram("test.export.lat").record(30);
  setEnabled(false);

  const std::string json = renderMetricsJson(reg);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.alpha\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.lat\":{\"count\":2,\"sum\":40,"
                      "\"min\":10,\"mean\":20,\"max\":30}"),
            std::string::npos);
  reg.resetAll();
}

}  // namespace
}  // namespace flames::obs
