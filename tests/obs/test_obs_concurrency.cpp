// Concurrent access to the flames::obs registry: many threads creating and
// bumping the same instruments, recording histograms and emitting spans.
// These tests are delta-based (they snapshot before and assert the exact
// increment) so they stay correct whatever other tests already recorded,
// and they use test-unique instrument names so registry creation itself is
// exercised under contention.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::obs {
namespace {

class ObsConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = enabled();
    wasTracing_ = tracingEnabled();
    setEnabled(true);
  }
  void TearDown() override {
    setTracing(wasTracing_);
    setEnabled(wasEnabled_);
  }
  bool wasEnabled_ = false;
  bool wasTracing_ = false;
};

TEST_F(ObsConcurrencyTest, ThreadsRacingToCreateOneCounterGetOneCounter) {
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        handles[t] = &counter("test.concurrency.create_race");
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[0], handles[t]) << "same name must be one instrument";
  }
}

TEST_F(ObsConcurrencyTest, ConcurrentIncrementsAllLand) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  Counter& c = counter("test.concurrency.increments");
  const std::uint64_t before = c.value();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(c.value() - before, kThreads * kPerThread);
}

TEST_F(ObsConcurrencyTest, ConcurrentDistinctCreationsAllRegistered) {
  // Threads creating *different* instruments while others read the listing
  // must neither crash nor lose instruments.
  constexpr int kThreads = 6;
  constexpr int kPerThread = 25;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          counter("test.concurrency.many." + std::to_string(t) + "." +
                  std::to_string(i))
              .add();
        }
      });
    }
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        (void)Registry::global().counters();
      }
    });
    for (auto& th : threads) th.join();
  }
  int found = 0;
  for (const Counter* c : Registry::global().counters()) {
    if (c->name().rfind("test.concurrency.many.", 0) == 0) ++found;
  }
  EXPECT_EQ(found, kThreads * kPerThread);
}

TEST_F(ObsConcurrencyTest, ConcurrentHistogramRecordsKeepCountAndBounds) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  Histogram& h = histogram("test.concurrency.histogram");
  const auto before = h.snapshot();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::uint64_t i = 1; i <= kPerThread; ++i) {
          h.record(i + static_cast<std::uint64_t>(t));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const auto after = h.snapshot();
  EXPECT_EQ(after.count - before.count, kThreads * kPerThread);
  EXPECT_GE(after.max, kPerThread);
  EXPECT_LE(after.min, static_cast<std::uint64_t>(kThreads));
  std::uint64_t bucketTotal = 0;
  for (std::uint64_t b : after.buckets) bucketTotal += b;
  std::uint64_t bucketBefore = 0;
  for (std::uint64_t b : before.buckets) bucketBefore += b;
  EXPECT_EQ(bucketTotal - bucketBefore, kThreads * kPerThread);
}

TEST_F(ObsConcurrencyTest, SpansFromManyThreadsAllRecorded) {
  setTracing(true);
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 40;
  const std::size_t before = Tracer::global().size();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          Span outer("test.span.outer." + std::to_string(t), "test");
          Span inner("test.span.inner", "test");
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const auto events = Tracer::global().snapshot();
  EXPECT_EQ(events.size() - before, 2u * kThreads * kSpansPerThread);
  // Nesting depth is tracked per thread: inner spans must sit one level
  // below their outer span even when six threads interleave.
  for (std::size_t i = before; i < events.size(); ++i) {
    if (events[i].name == "test.span.inner") {
      EXPECT_EQ(events[i].depth, 1);
    } else if (events[i].name.rfind("test.span.outer.", 0) == 0) {
      EXPECT_EQ(events[i].depth, 0);
    }
  }
}

TEST_F(ObsConcurrencyTest, TogglingEnabledWhileCountingDoesNotCrash) {
  // The kill switch flips while workers bump a counter; the exact count is
  // unspecified (that is the point of a relaxed switch) but the registry
  // must stay consistent and the final value must not exceed the attempts.
  Counter& c = counter("test.concurrency.toggle");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::thread toggler([] {
    for (int i = 0; i < 500; ++i) {
      setEnabled(i % 2 == 0);
    }
    setEnabled(true);
  });
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
      });
    }
    for (auto& th : threads) th.join();
  }
  toggler.join();
  EXPECT_LE(c.value() - before, kThreads * kPerThread);
}

}  // namespace
}  // namespace flames::obs
