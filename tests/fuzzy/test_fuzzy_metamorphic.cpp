// Metamorphic tests for the fuzzy arithmetic the diagnoser is built on.
//
// Unlike tests/fuzzy/test_fuzzy_properties.cpp (hand-picked algebraic
// identities over a few seeds), each test here drives ~1000 independently
// seeded cases through a *relation between two executions* of the code under
// test — commuted operands, jointly widened operands, nested operands — so a
// regression anywhere in the trapezoid algebra or the Dc kernel trips a
// reproducible case index. Sub-seeds come from workload::deriveSeed, the
// same splitmix64 derivation the scenario fuzzer uses, so a failing case
// can be replayed in isolation from (kMasterSeed, case index).
//
// The relations asserted here were validated against the implementation's
// actual semantics first; notably Dc is NOT monotone under widening only
// one operand (the max(ia/am, ia/an) normalisation can flip sides), so the
// monotonicity law is stated for joint widening only.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fuzzy/consistency.h"
#include "fuzzy/fuzzy_interval.h"
#include "workload/rng.h"

namespace flames::fuzzy {
namespace {

constexpr std::uint32_t kMasterSeed = 20260807;
constexpr int kCases = 1000;

/// Fresh engine for case `i`: failures report the case index, and the case
/// is replayable without running its predecessors.
std::mt19937 caseRng(std::uint64_t stream, int i) {
  return std::mt19937(
      workload::deriveSeed(kMasterSeed, (stream << 32) | std::uint64_t(i)));
}

FuzzyInterval randomInterval(std::mt19937& rng) {
  std::uniform_real_distribution<double> mid(-10.0, 10.0);
  std::uniform_real_distribution<double> width(0.0, 3.0);
  std::uniform_real_distribution<double> spread(0.0, 2.0);
  const double m1 = mid(rng);
  return {m1, m1 + width(rng), spread(rng), spread(rng)};
}

/// Trapezoid with nonempty area (Dc's area-ratio path, not the point
/// degenerations).
FuzzyInterval randomWideInterval(std::mt19937& rng) {
  std::uniform_real_distribution<double> mid(-10.0, 10.0);
  std::uniform_real_distribution<double> width(0.1, 3.0);
  std::uniform_real_distribution<double> spread(0.05, 2.0);
  const double m1 = mid(rng);
  return {m1, m1 + width(rng), spread(rng), spread(rng)};
}

TEST(FuzzyMetamorphic, AdditionCommutes) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(1, i);
    const FuzzyInterval a = randomInterval(rng);
    const FuzzyInterval b = randomInterval(rng);
    const FuzzyInterval ab = a.add(b);
    const FuzzyInterval ba = b.add(a);
    // Componentwise double addition commutes exactly; demand bit equality.
    EXPECT_EQ(ab.m1(), ba.m1()) << "case " << i;
    EXPECT_EQ(ab.m2(), ba.m2()) << "case " << i;
    EXPECT_EQ(ab.alpha(), ba.alpha()) << "case " << i;
    EXPECT_EQ(ab.beta(), ba.beta()) << "case " << i;
  }
}

TEST(FuzzyMetamorphic, SubtractionAntiCommutes) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(2, i);
    const FuzzyInterval a = randomInterval(rng);
    const FuzzyInterval b = randomInterval(rng);
    // a - b == -(b - a)
    EXPECT_TRUE(a.sub(b).approxEquals(b.sub(a).negate(), 1e-9)) << "case " << i;
  }
}

TEST(FuzzyMetamorphic, MultiplicationCommutes) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(3, i);
    const FuzzyInterval a = randomInterval(rng);
    const FuzzyInterval b = randomInterval(rng);
    EXPECT_TRUE(a.mul(b).approxEquals(b.mul(a), 1e-9)) << "case " << i;
  }
}

TEST(FuzzyMetamorphic, IntersectionAreaIsSymmetric) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(4, i);
    const FuzzyInterval a = randomInterval(rng);
    const FuzzyInterval b = randomInterval(rng);
    const double ab =
        a.toPiecewiseLinear().min(b.toPiecewiseLinear()).area();
    const double ba =
        b.toPiecewiseLinear().min(a.toPiecewiseLinear()).area();
    EXPECT_NEAR(ab, ba, 1e-12 * std::max(1.0, std::abs(ab))) << "case " << i;
  }
}

TEST(FuzzyMetamorphic, DcIsSymmetric) {
  // The max(ia/am, ia/an) normalisation makes Dc order-independent even
  // though the paper's raw formula is not; the engine relies on this when
  // it scores derived-vs-derived coincidences in either encounter order.
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(5, i);
    const FuzzyInterval a = randomWideInterval(rng);
    const FuzzyInterval b = randomWideInterval(rng);
    EXPECT_NEAR(degreeOfConsistency(a, b).dc, degreeOfConsistency(b, a).dc,
                1e-12)
        << "case " << i;
  }
}

TEST(FuzzyMetamorphic, DcOfValueWithItselfIsOne) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(6, i);
    const FuzzyInterval a = randomWideInterval(rng);
    const Consistency c = degreeOfConsistency(a, a);
    EXPECT_NEAR(c.dc, 1.0, 1e-12) << "case " << i;
    EXPECT_EQ(c.deviation, Deviation::kNone) << "case " << i;
  }
}

TEST(FuzzyMetamorphic, DcStaysInUnitIntervalAndSignAgrees) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(7, i);
    const FuzzyInterval a = randomInterval(rng);
    const FuzzyInterval b = randomInterval(rng);
    const Consistency c = degreeOfConsistency(a, b);
    EXPECT_GE(c.dc, 0.0) << "case " << i;
    EXPECT_LE(c.dc, 1.0) << "case " << i;
    EXPECT_NEAR(std::abs(c.signedDc()), c.dc, 0.0) << "case " << i;
    if (c.deviation == Deviation::kBelow) {
      EXPECT_LE(c.signedDc(), 0.0) << "case " << i;
    } else {
      EXPECT_GE(c.signedDc(), 0.0) << "case " << i;
    }
  }
}

TEST(FuzzyMetamorphic, DcMonotoneUnderJointSupportWidening) {
  // Widening BOTH operands by the same margin can only grow the overlap
  // relative to either side, so Dc must not decrease. (Widening one side
  // alone is NOT monotone — the overlap grows but so does that side's
  // normalising area — which is why the oracle never asserts it.)
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(8, i);
    const FuzzyInterval a = randomWideInterval(rng);
    const FuzzyInterval b = randomWideInterval(rng);
    std::uniform_real_distribution<double> marginDist(0.0, 2.0);
    const double margin = marginDist(rng);
    const double before = degreeOfConsistency(a, b).dc;
    const double after =
        degreeOfConsistency(a.widened(margin), b.widened(margin)).dc;
    EXPECT_GE(after, before - 1e-9) << "case " << i << " margin " << margin;
  }
}

TEST(FuzzyMetamorphic, DisjointSupportsScoreZero) {
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(9, i);
    const FuzzyInterval a = randomWideInterval(rng);
    std::uniform_real_distribution<double> gapDist(0.1, 5.0);
    // Shift a copy strictly past a's support: no overlap, hard conflict.
    const double shift = a.support().width() + gapDist(rng);
    const FuzzyInterval b(a.m1() + shift, a.m2() + shift, a.alpha(), a.beta());
    const Consistency c = degreeOfConsistency(a, b);
    EXPECT_LE(c.dc, 1e-12) << "case " << i;
    EXPECT_TRUE(c.isHardConflict()) << "case " << i;
    EXPECT_EQ(c.deviation, Deviation::kBelow) << "case " << i;
  }
}

TEST(FuzzyMetamorphic, NestedValueScoresFullConsistency) {
  // A value whose distribution nests inside the nominal's is fully
  // consistent with it — the containment normalisation of Dc.
  for (int i = 0; i < kCases; ++i) {
    auto rng = caseRng(10, i);
    const FuzzyInterval outer = randomWideInterval(rng);
    std::uniform_real_distribution<double> t(0.1, 0.9);
    const double shrink = t(rng);
    const double mid = outer.coreMidpoint();
    const FuzzyInterval inner(mid - shrink * (mid - outer.m1()),
                              mid + shrink * (outer.m2() - mid),
                              shrink * outer.alpha(), shrink * outer.beta());
    EXPECT_NEAR(degreeOfConsistency(inner, outer).dc, 1.0, 1e-9)
        << "case " << i;
  }
}

}  // namespace
}  // namespace flames::fuzzy
