#include "fuzzy/linguistic.h"

#include <gtest/gtest.h>

namespace flames::fuzzy {
namespace {

TEST(LinguisticScale, DefaultScaleContainsPaperTerms) {
  const auto scale = LinguisticScale::defaultFaultiness();
  // The paper's §8.1 examples.
  const auto correct = scale.find("correct");
  ASSERT_TRUE(correct.has_value());
  EXPECT_TRUE(correct->meaning.approxEquals(FuzzyInterval(0.0, 0.05, 0.0, 0.05)));
  const auto likely = scale.find("likely-correct");
  ASSERT_TRUE(likely.has_value());
  EXPECT_TRUE(
      likely->meaning.approxEquals(FuzzyInterval(0.18, 0.34, 0.02, 0.06)));
}

TEST(LinguisticScale, RejectsEmpty) {
  EXPECT_THROW(LinguisticScale(std::vector<LinguisticTerm>{}),
               std::invalid_argument);
}

TEST(LinguisticScale, MeaningOfThrowsOnUnknown) {
  const auto scale = LinguisticScale::defaultFaultiness();
  EXPECT_THROW((void)scale.meaningOf("bogus"), std::out_of_range);
  EXPECT_NO_THROW((void)scale.meaningOf("faulty"));
}

TEST(LinguisticScale, ClassifyEndpoints) {
  const auto scale = LinguisticScale::defaultFaultiness();
  EXPECT_EQ(scale.classify(0.0).name, "correct");
  EXPECT_EQ(scale.classify(1.0).name, "faulty");
  EXPECT_EQ(scale.classify(0.5).name, "unknown");
  EXPECT_EQ(scale.classify(0.25).name, "likely-correct");
  EXPECT_EQ(scale.classify(0.75).name, "likely-faulty");
}

TEST(LinguisticScale, ApproximatePicksConsistentTerm) {
  const auto scale = LinguisticScale::defaultFaultiness();
  EXPECT_EQ(scale.approximate(FuzzyInterval::about(0.02, 0.01)).name,
            "correct");
  EXPECT_EQ(scale.approximate(FuzzyInterval::about(0.97, 0.02)).name,
            "faulty");
}

TEST(LinguisticScale, FindMissingReturnsNullopt) {
  const auto scale = LinguisticScale::defaultFaultiness();
  EXPECT_FALSE(scale.find("nope").has_value());
}

TEST(Defuzzify, CentroidOfTerm) {
  const auto scale = LinguisticScale::defaultFaultiness();
  const double c = defuzzifyCentroid(scale.meaningOf("unknown"));
  EXPECT_NEAR(c, 0.5, 0.02);
}

TEST(LinguisticScale, SizeAndTermsAccessors) {
  const auto scale = LinguisticScale::defaultFaultiness();
  EXPECT_EQ(scale.size(), 5u);
  EXPECT_FALSE(scale.empty());
  EXPECT_EQ(scale.terms().front().name, "correct");
  EXPECT_EQ(scale.terms().back().name, "faulty");
}

}  // namespace
}  // namespace flames::fuzzy
