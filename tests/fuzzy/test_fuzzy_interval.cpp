#include "fuzzy/fuzzy_interval.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flames::fuzzy {
namespace {

TEST(FuzzyInterval, DefaultIsCrispZero) {
  const FuzzyInterval f;
  EXPECT_TRUE(f.isPoint());
  EXPECT_DOUBLE_EQ(f.membership(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.membership(0.1), 0.0);
}

TEST(FuzzyInterval, ConstructorValidation) {
  EXPECT_THROW(FuzzyInterval(2.0, 1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FuzzyInterval(0.0, 1.0, -0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(FuzzyInterval(0.0, 1.0, 0.0, -0.1), std::invalid_argument);
}

TEST(FuzzyInterval, InvariantViolationsThrowTypedException) {
  // The typed exception derives from std::invalid_argument (so the checks
  // above keep passing) and carries the offending parameters.
  try {
    FuzzyInterval f(2.0, 1.0, 0.0, 0.0);
    FAIL() << "expected InvalidFuzzyInterval";
  } catch (const InvalidFuzzyInterval& e) {
    EXPECT_DOUBLE_EQ(e.m1(), 2.0);
    EXPECT_DOUBLE_EQ(e.m2(), 1.0);
    EXPECT_NE(std::string(e.what()).find("m1 > m2"), std::string::npos);
  }
  try {
    FuzzyInterval f(0.0, 1.0, -0.5, 0.0);
    FAIL() << "expected InvalidFuzzyInterval";
  } catch (const InvalidFuzzyInterval& e) {
    EXPECT_DOUBLE_EQ(e.alpha(), -0.5);
    EXPECT_NE(std::string(e.what()).find("negative spread"),
              std::string::npos);
  }
}

TEST(FuzzyInterval, NonFiniteParametersRejected) {
  const double nan = std::nan("");
  EXPECT_THROW(FuzzyInterval(nan, 1.0, 0.0, 0.0), InvalidFuzzyInterval);
  EXPECT_THROW(FuzzyInterval(0.0, 1.0, nan, 0.0), InvalidFuzzyInterval);
}

TEST(FuzzyInterval, FromSupportCoreInvertedCoreThrowsTyped) {
  EXPECT_THROW(FuzzyInterval::fromSupportCore(0.0, 2.0, 1.0, 3.0),
               InvalidFuzzyInterval);
}

TEST(FuzzyInterval, UniformRepresentation) {
  // Paper §3.2: crisp number, crisp interval, fuzzy number, fuzzy interval
  // all share the 4-tuple form.
  EXPECT_TRUE(FuzzyInterval::crisp(5.0).isPoint());
  EXPECT_TRUE(FuzzyInterval::crispInterval(1.0, 2.0).isCrisp());
  EXPECT_FALSE(FuzzyInterval::crispInterval(1.0, 2.0).isPoint());
  const auto n = FuzzyInterval::number(3.0, 0.05, 0.05);
  EXPECT_FALSE(n.isCrisp());
  EXPECT_EQ(n.core(), (Cut{3.0, 3.0}));
}

TEST(FuzzyInterval, MembershipMatchesPaperFigure1) {
  // mu(x) = (x - m1 + alpha)/alpha rising, 1 on the core, falling edge.
  const FuzzyInterval f(1.0, 2.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(f.membership(0.4), 0.0);
  EXPECT_DOUBLE_EQ(f.membership(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.membership(0.75), 0.5);
  EXPECT_DOUBLE_EQ(f.membership(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.membership(1.5), 1.0);
  EXPECT_DOUBLE_EQ(f.membership(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f.membership(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f.membership(3.0), 0.0);
}

TEST(FuzzyInterval, SupportAndCore) {
  const FuzzyInterval f(1.0, 2.0, 0.5, 1.0);
  EXPECT_EQ(f.support(), (Cut{0.5, 3.0}));
  EXPECT_EQ(f.core(), (Cut{1.0, 2.0}));
}

TEST(FuzzyInterval, AlphaCutInterpolates) {
  const FuzzyInterval f(1.0, 2.0, 0.5, 1.0);
  EXPECT_EQ(f.alphaCut(1.0), (Cut{1.0, 2.0}));
  EXPECT_EQ(f.alphaCut(0.0), (Cut{0.5, 3.0}));
  const Cut half = f.alphaCut(0.5);
  EXPECT_DOUBLE_EQ(half.lo, 0.75);
  EXPECT_DOUBLE_EQ(half.hi, 2.5);
}

TEST(FuzzyInterval, Area) {
  EXPECT_DOUBLE_EQ(FuzzyInterval(1.0, 2.0, 0.5, 1.0).area(), 1.75);
  EXPECT_DOUBLE_EQ(FuzzyInterval::crisp(3.0).area(), 0.0);
  EXPECT_DOUBLE_EQ(FuzzyInterval::crispInterval(1.0, 4.0).area(), 3.0);
}

TEST(FuzzyInterval, AdditionMatchesPaperRule) {
  // M (+) N = [m1+n1, m2+n2, alpha+gamma, beta+delta] (paper §3.2).
  const FuzzyInterval m(1.0, 2.0, 0.1, 0.2);
  const FuzzyInterval n(3.0, 5.0, 0.3, 0.4);
  const FuzzyInterval sum = m + n;
  EXPECT_TRUE(sum.approxEquals(FuzzyInterval(4.0, 7.0, 0.4, 0.6)));
}

TEST(FuzzyInterval, SubtractionMatchesPaperRule) {
  // M (-) N = [m1-n2, m2-n1, alpha+delta, beta+gamma].
  const FuzzyInterval m(1.0, 2.0, 0.1, 0.2);
  const FuzzyInterval n(3.0, 5.0, 0.3, 0.4);
  const FuzzyInterval diff = m - n;
  EXPECT_TRUE(diff.approxEquals(FuzzyInterval(-4.0, -1.0, 0.5, 0.5)));
}

TEST(FuzzyInterval, NegationSwapsSpreads) {
  const FuzzyInterval m(1.0, 2.0, 0.1, 0.2);
  EXPECT_TRUE((-m).approxEquals(FuzzyInterval(-2.0, -1.0, 0.2, 0.1)));
  EXPECT_TRUE((-(-m)).approxEquals(m));
}

TEST(FuzzyInterval, MultiplicationPositive) {
  // Fig. 2 first step: Vb = Va (*) amp1 with Va=[3,3,.05,.05],
  // amp1=[1,1,.05,.05]: support [2.95,3.05]*[0.95,1.05] = [2.8025,3.2025].
  const auto va = FuzzyInterval::about(3.0, 0.05);
  const auto amp1 = FuzzyInterval::about(1.0, 0.05);
  const FuzzyInterval vb = va * amp1;
  EXPECT_NEAR(vb.m1(), 3.0, 1e-12);
  EXPECT_NEAR(vb.m2(), 3.0, 1e-12);
  EXPECT_NEAR(vb.support().lo, 2.8025, 1e-12);
  EXPECT_NEAR(vb.support().hi, 3.2025, 1e-12);
}

TEST(FuzzyInterval, MultiplicationWithNegativeValues) {
  const auto a = FuzzyInterval::crispInterval(-2.0, 3.0);
  const auto b = FuzzyInterval::crispInterval(-1.0, 4.0);
  const FuzzyInterval p = a * b;
  EXPECT_DOUBLE_EQ(p.support().lo, -8.0);  // (-2)*4
  EXPECT_DOUBLE_EQ(p.support().hi, 12.0);  // 3*4
}

TEST(FuzzyInterval, DivisionByZeroStraddlingThrows) {
  const auto a = FuzzyInterval::crisp(1.0);
  const auto b = FuzzyInterval::crispInterval(-1.0, 1.0);
  EXPECT_THROW((void)(a / b), std::domain_error);
}

TEST(FuzzyInterval, DivisionRoundTripContainsOriginal) {
  const auto a = FuzzyInterval::about(6.0, 0.2);
  const auto b = FuzzyInterval::about(2.0, 0.1);
  const FuzzyInterval q = (a / b) * b;
  // Fuzzy arithmetic is sub-distributive: the round trip only widens.
  EXPECT_TRUE(a.subsetOf(q));
}

TEST(FuzzyInterval, ScaleNegative) {
  const FuzzyInterval m(1.0, 2.0, 0.1, 0.2);
  const FuzzyInterval s = m * -2.0;
  EXPECT_TRUE(s.approxEquals(FuzzyInterval(-4.0, -2.0, 0.4, 0.2)));
}

TEST(FuzzyInterval, ReciprocalOfPositive) {
  const auto m = FuzzyInterval::crispInterval(2.0, 4.0);
  const FuzzyInterval r = m.reciprocal();
  EXPECT_DOUBLE_EQ(r.support().lo, 0.25);
  EXPECT_DOUBLE_EQ(r.support().hi, 0.5);
}

TEST(FuzzyInterval, HullContainsBoth) {
  const FuzzyInterval a(1.0, 2.0, 0.5, 0.5);
  const FuzzyInterval b(5.0, 6.0, 0.1, 2.0);
  const FuzzyInterval h = a.hull(b);
  EXPECT_TRUE(a.subsetOf(h));
  EXPECT_TRUE(b.subsetOf(h));
}

TEST(FuzzyInterval, SubsetOfReflexiveAndOrdering) {
  const FuzzyInterval inner(1.0, 2.0, 0.1, 0.1);
  const FuzzyInterval outer(0.9, 2.1, 0.3, 0.3);
  EXPECT_TRUE(inner.subsetOf(inner));
  EXPECT_TRUE(inner.subsetOf(outer));
  EXPECT_FALSE(outer.subsetOf(inner));
}

TEST(FuzzyInterval, PossibilityOfEqualityOverlappingCores) {
  const FuzzyInterval a(1.0, 3.0, 0.5, 0.5);
  const FuzzyInterval b(2.0, 4.0, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(a.possibilityOfEquality(b), 1.0);
}

TEST(FuzzyInterval, PossibilityOfEqualityDisjointSupports) {
  const FuzzyInterval a(1.0, 2.0, 0.1, 0.1);
  const FuzzyInterval b(5.0, 6.0, 0.1, 0.1);
  EXPECT_DOUBLE_EQ(a.possibilityOfEquality(b), 0.0);
}

TEST(FuzzyInterval, PossibilityOfEqualityPartialOverlap) {
  // Edges cross halfway: right edge of a falls 1->0 on [2,3], left edge of
  // b rises 0->1 on [2,3]; they meet at 2.5 with membership 0.5.
  const FuzzyInterval a(1.0, 2.0, 0.0, 1.0);
  const FuzzyInterval b(3.0, 4.0, 1.0, 0.0);
  EXPECT_NEAR(a.possibilityOfEquality(b), 0.5, 1e-12);
  EXPECT_NEAR(b.possibilityOfEquality(a), 0.5, 1e-12);
}

TEST(FuzzyInterval, MapMonotoneLog) {
  const auto m = FuzzyInterval::fromSupportCore(1.0, 2.0, 4.0, 8.0);
  const FuzzyInterval lg = m.mapMonotone([](double x) { return std::log2(x); });
  EXPECT_NEAR(lg.support().lo, 0.0, 1e-12);
  EXPECT_NEAR(lg.core().lo, 1.0, 1e-12);
  EXPECT_NEAR(lg.core().hi, 2.0, 1e-12);
  EXPECT_NEAR(lg.support().hi, 3.0, 1e-12);
}

TEST(FuzzyInterval, MapMonotoneDecreasing) {
  const auto m = FuzzyInterval::fromSupportCore(1.0, 2.0, 4.0, 8.0);
  const FuzzyInterval neg = m.mapMonotone([](double x) { return -x; });
  EXPECT_NEAR(neg.support().lo, -8.0, 1e-12);
  EXPECT_NEAR(neg.support().hi, -1.0, 1e-12);
}

TEST(FuzzyInterval, WithToleranceSpreads) {
  const auto r = FuzzyInterval::withTolerance(200.0, 0.05);
  EXPECT_DOUBLE_EQ(r.alpha(), 10.0);
  EXPECT_DOUBLE_EQ(r.beta(), 10.0);
  EXPECT_DOUBLE_EQ(r.coreMidpoint(), 200.0);
}

TEST(FuzzyInterval, CentroidSymmetric) {
  EXPECT_NEAR(FuzzyInterval::about(5.0, 1.0).centroid(), 5.0, 1e-9);
  EXPECT_NEAR(FuzzyInterval::crisp(5.0).centroid(), 5.0, 1e-12);
  EXPECT_NEAR(FuzzyInterval::crispInterval(2.0, 4.0).centroid(), 3.0, 1e-9);
}

TEST(FuzzyInterval, StreamFormat) {
  EXPECT_EQ(FuzzyInterval(1.0, 2.0, 0.5, 0.25).str(), "[1, 2, 0.5, 0.25]");
}

TEST(FuzzyInterval, WidenedGrowsSpreadsOnly) {
  const FuzzyInterval f(1.0, 2.0, 0.1, 0.2);
  const FuzzyInterval w = f.widened(0.3);
  EXPECT_DOUBLE_EQ(w.alpha(), 0.4);
  EXPECT_DOUBLE_EQ(w.beta(), 0.5);
  EXPECT_EQ(w.core(), f.core());
  EXPECT_THROW((void)f.widened(-0.1), std::invalid_argument);
}

}  // namespace
}  // namespace flames::fuzzy
