#include "fuzzy/tnorm.h"

#include <gtest/gtest.h>

namespace flames::fuzzy {
namespace {

const TNorm kAll[] = {TNorm::kMin, TNorm::kProduct, TNorm::kLukasiewicz};

TEST(TNorm, BoundaryConditions) {
  // T(a, 1) = a and S(a, 0) = a for every t-norm/t-conorm pair.
  for (TNorm t : kAll) {
    for (double a : {0.0, 0.3, 0.7, 1.0}) {
      EXPECT_DOUBLE_EQ(tnorm(t, a, 1.0), a);
      EXPECT_DOUBLE_EQ(tnorm(t, 1.0, a), a);
      EXPECT_DOUBLE_EQ(tconorm(t, a, 0.0), a);
      EXPECT_DOUBLE_EQ(tconorm(t, 0.0, a), a);
    }
  }
}

TEST(TNorm, Commutativity) {
  for (TNorm t : kAll) {
    for (double a : {0.2, 0.5, 0.9}) {
      for (double b : {0.1, 0.6, 1.0}) {
        EXPECT_DOUBLE_EQ(tnorm(t, a, b), tnorm(t, b, a));
        EXPECT_DOUBLE_EQ(tconorm(t, a, b), tconorm(t, b, a));
      }
    }
  }
}

TEST(TNorm, Monotonicity) {
  for (TNorm t : kAll) {
    EXPECT_LE(tnorm(t, 0.3, 0.4), tnorm(t, 0.3, 0.6));
    EXPECT_LE(tconorm(t, 0.3, 0.4), tconorm(t, 0.3, 0.6));
  }
}

TEST(TNorm, OrderingOfFamilies) {
  // Lukasiewicz <= product <= min pointwise (standard ordering).
  for (double a : {0.2, 0.5, 0.8}) {
    for (double b : {0.3, 0.6, 0.9}) {
      EXPECT_LE(tnorm(TNorm::kLukasiewicz, a, b), tnorm(TNorm::kProduct, a, b));
      EXPECT_LE(tnorm(TNorm::kProduct, a, b), tnorm(TNorm::kMin, a, b));
    }
  }
}

TEST(TNorm, SpecificValues) {
  EXPECT_DOUBLE_EQ(tnorm(TNorm::kMin, 0.4, 0.7), 0.4);
  EXPECT_DOUBLE_EQ(tnorm(TNorm::kProduct, 0.4, 0.5), 0.2);
  EXPECT_DOUBLE_EQ(tnorm(TNorm::kLukasiewicz, 0.4, 0.5), 0.0);
  EXPECT_NEAR(tnorm(TNorm::kLukasiewicz, 0.8, 0.7), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(tconorm(TNorm::kMin, 0.4, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(tconorm(TNorm::kProduct, 0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(tconorm(TNorm::kLukasiewicz, 0.8, 0.7), 1.0);
}

TEST(TNorm, DeMorganDuality) {
  // S(a,b) = 1 - T(1-a, 1-b) for each dual pair.
  for (TNorm t : kAll) {
    for (double a : {0.25, 0.5, 0.75}) {
      for (double b : {0.1, 0.65}) {
        EXPECT_NEAR(tconorm(t, a, b),
                    fuzzyNot(tnorm(t, fuzzyNot(a), fuzzyNot(b))), 1e-12);
      }
    }
  }
}

TEST(TNorm, NotIsInvolutive) {
  for (double a : {0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(fuzzyNot(fuzzyNot(a)), a);
  }
}

}  // namespace
}  // namespace flames::fuzzy
