#include "fuzzy/consistency.h"

#include <gtest/gtest.h>

namespace flames::fuzzy {
namespace {

TEST(Consistency, CorroborationWhenMeasuredInsideNominal) {
  // Vm strictly inside Vn: Dc == 1 (paper: "equals 1 if Vm included in Vn").
  const auto vm = FuzzyInterval::about(3.0, 0.05);
  const auto vn = FuzzyInterval::about(3.0, 0.5);
  const auto c = degreeOfConsistency(vm, vn);
  EXPECT_NEAR(c.dc, 1.0, 1e-9);
  EXPECT_FALSE(c.isDiscrepant());
  EXPECT_NEAR(c.nogoodDegree(), 0.0, 1e-9);
}

TEST(Consistency, HardConflictWhenDisjoint) {
  const auto vm = FuzzyInterval::about(1.0, 0.1);
  const auto vn = FuzzyInterval::about(5.0, 0.1);
  const auto c = degreeOfConsistency(vm, vn);
  EXPECT_DOUBLE_EQ(c.dc, 0.0);
  EXPECT_TRUE(c.isHardConflict());
  EXPECT_DOUBLE_EQ(c.nogoodDegree(), 1.0);
  EXPECT_EQ(c.deviation, Deviation::kBelow);
  EXPECT_DOUBLE_EQ(c.signedDc(), -0.0);
}

TEST(Consistency, PartialConflictBetweenZeroAndOne) {
  const auto vm = FuzzyInterval::about(3.5, 0.5);
  const auto vn = FuzzyInterval::about(3.0, 0.5);
  const auto c = degreeOfConsistency(vm, vn);
  EXPECT_GT(c.dc, 0.0);
  EXPECT_LT(c.dc, 1.0);
  EXPECT_TRUE(c.isDiscrepant());
  EXPECT_FALSE(c.isHardConflict());
  EXPECT_EQ(c.deviation, Deviation::kAbove);
}

TEST(Consistency, PaperFig5MembershipCase) {
  // The derived Ir1 = 105 uA (crisp point) against the fuzzy rating
  // [-1, 100, 0, 10]: Dc = membership(105) = (100 + 10 - 105)/10 = 0.5,
  // so the nogood degree is 0.5 — exactly the paper's walk-through.
  const auto ir1 = FuzzyInterval::crisp(105.0);
  const FuzzyInterval bound(-1.0, 100.0, 0.0, 10.0);
  const auto c = degreeOfConsistency(ir1, bound);
  EXPECT_NEAR(c.dc, 0.5, 1e-12);
  EXPECT_NEAR(c.nogoodDegree(), 0.5, 1e-12);
  EXPECT_EQ(c.deviation, Deviation::kAbove);
}

TEST(Consistency, PaperFig5HardCase) {
  // Ir2 = 200 uA against the same rating: membership 0 => nogood degree 1.
  const auto ir2 = FuzzyInterval::crisp(200.0);
  const FuzzyInterval bound(-1.0, 100.0, 0.0, 10.0);
  const auto c = degreeOfConsistency(ir2, bound);
  EXPECT_DOUBLE_EQ(c.dc, 0.0);
  EXPECT_DOUBLE_EQ(c.nogoodDegree(), 1.0);
}

TEST(Consistency, PointMeasurementUsesMembership) {
  const auto vn = FuzzyInterval(2.0, 4.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(degreeOfConsistency(FuzzyInterval::crisp(3.0), vn).dc, 1.0);
  EXPECT_DOUBLE_EQ(degreeOfConsistency(FuzzyInterval::crisp(4.5), vn).dc, 0.5);
  EXPECT_DOUBLE_EQ(degreeOfConsistency(FuzzyInterval::crisp(9.0), vn).dc, 0.0);
}

TEST(Consistency, PointNominalUsesMeasuredMembership) {
  // Against a point nominal the area ratio degenerates; Dc extends to the
  // possibility of the point under the measured distribution.
  const auto vn = FuzzyInterval::crisp(3.0);
  EXPECT_DOUBLE_EQ(degreeOfConsistency(FuzzyInterval::about(3.0, 0.5), vn).dc,
                   1.0);
  // Measured [3.25, 3.25, 0.5, 0.5]: membership of 3.0 is 0.5.
  EXPECT_DOUBLE_EQ(
      degreeOfConsistency(FuzzyInterval::about(3.25, 0.5), vn).dc, 0.5);
  EXPECT_DOUBLE_EQ(
      degreeOfConsistency(FuzzyInterval::about(9.0, 0.5), vn).dc, 0.0);
}

TEST(Consistency, AreaRatioExactForHalfOverlap) {
  // Vm = rect [0,2], Vn = rect [1,3]: intersection rect [1,2],
  // Dc = 1/2.
  const auto vm = FuzzyInterval::crispInterval(0.0, 2.0);
  const auto vn = FuzzyInterval::crispInterval(1.0, 3.0);
  EXPECT_NEAR(degreeOfConsistency(vm, vn).dc, 0.5, 1e-12);
}

TEST(Consistency, ContainmentIsNeverConflict) {
  // Width mismatch alone is not a discrepancy: whichever side is wider, a
  // contained pair is fully consistent (the symmetric-normalisation
  // extension; a purely Vm-normalised Dc would score the first case 0.25).
  const auto wide = FuzzyInterval::crispInterval(0.0, 4.0);
  const auto narrow = FuzzyInterval::crispInterval(0.0, 1.0);
  EXPECT_NEAR(degreeOfConsistency(wide, narrow).dc, 1.0, 1e-12);
  EXPECT_NEAR(degreeOfConsistency(narrow, wide).dc, 1.0, 1e-12);
}

TEST(Consistency, PreciseNominalInsideFuzzyMeasurementIsConsistent) {
  // A nearly-exact nominal prediction centred under a fuzzy meter reading
  // must not conflict (this pair arises at source nodes, whose nominal has
  // no tolerance contribution).
  const auto vm = FuzzyInterval::about(10.0, 0.05);
  const FuzzyInterval vn(10.0, 10.0, 1e-12, 1e-12);
  EXPECT_NEAR(degreeOfConsistency(vm, vn).dc, 1.0, 1e-6);
}

TEST(Consistency, SignedDcIsNegativeBelowNominal) {
  const auto vm = FuzzyInterval::about(2.0, 0.5);
  const auto vn = FuzzyInterval::about(3.0, 0.5);
  const auto c = degreeOfConsistency(vm, vn);
  EXPECT_EQ(c.deviation, Deviation::kBelow);
  EXPECT_LE(c.signedDc(), 0.0);
}

TEST(Consistency, NoDeviationWhenCentred) {
  const auto vm = FuzzyInterval::about(3.0, 0.1);
  const auto vn = FuzzyInterval::about(3.0, 0.6);
  EXPECT_EQ(degreeOfConsistency(vm, vn).deviation, Deviation::kNone);
}

TEST(Possibility, MatchesPossibilityOfEquality) {
  const FuzzyInterval a(1.0, 2.0, 0.0, 1.0);
  const FuzzyInterval b(3.0, 4.0, 1.0, 0.0);
  EXPECT_NEAR(possibility(a, b), 0.5, 1e-12);
}

TEST(Necessity, FullWhenNominalCoversMeasurementSupport) {
  const auto vm = FuzzyInterval::about(3.0, 0.1);
  const auto vn = FuzzyInterval::fromSupportCore(0.0, 2.0, 4.0, 6.0);
  EXPECT_NEAR(necessity(vm, vn), 1.0, 1e-9);
}

TEST(Necessity, ZeroWhenDisjoint) {
  const auto vm = FuzzyInterval::about(1.0, 0.1);
  const auto vn = FuzzyInterval::about(5.0, 0.1);
  EXPECT_NEAR(necessity(vm, vn), 0.0, 1e-9);
}

TEST(Necessity, IntermediateOnPartialOverlap) {
  // vm = [4.5, 5, 0.5, 0.5], vn = [3, 5, 1, 2]: the infimum of
  // max(1 - mu_m, mu_n) sits on vm's right edge against vn's falling edge;
  // solving (x-5)/0.5 = (7-x)/2 gives x = 5.4, value 0.8.
  const auto vm = FuzzyInterval(4.5, 5.0, 0.5, 0.5);
  const auto vn = FuzzyInterval(3.0, 5.0, 1.0, 2.0);
  const double n = necessity(vm, vn);
  EXPECT_NEAR(n, 0.8, 1e-9);
  EXPECT_GT(n, 0.0);
  EXPECT_LT(n, 1.0);
  // Necessity never exceeds possibility.
  EXPECT_LE(n, possibility(vm, vn) + 1e-12);
}

}  // namespace
}  // namespace flames::fuzzy
