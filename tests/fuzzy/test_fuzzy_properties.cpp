// Property-based tests over randomised trapezoids: the algebraic invariants
// the diagnosis engine relies on must hold across the whole shape space, not
// just hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fuzzy/consistency.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::fuzzy {
namespace {

FuzzyInterval randomInterval(std::mt19937& rng, double lo = -10.0,
                             double hi = 10.0) {
  std::uniform_real_distribution<double> mid(lo, hi);
  std::uniform_real_distribution<double> width(0.0, 3.0);
  std::uniform_real_distribution<double> spread(0.0, 2.0);
  const double m1 = mid(rng);
  return {m1, m1 + width(rng), spread(rng), spread(rng)};
}

FuzzyInterval randomPositive(std::mt19937& rng) {
  std::uniform_real_distribution<double> mid(0.5, 10.0);
  std::uniform_real_distribution<double> width(0.0, 2.0);
  const double m1 = mid(rng);
  const double m2 = m1 + width(rng);
  std::uniform_real_distribution<double> spreadL(0.0, m1 * 0.4);
  std::uniform_real_distribution<double> spreadR(0.0, 2.0);
  return {m1, m2, spreadL(rng), spreadR(rng)};
}

class FuzzyPropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  std::mt19937 rng_{GetParam()};
};

TEST_P(FuzzyPropertyTest, AdditionCommutesAndPreservesArea) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    EXPECT_TRUE((a + b).approxEquals(b + a, 1e-9));
    // Spreads add: area(a+b) = area(a) + area(b).
    EXPECT_NEAR((a + b).area(), a.area() + b.area(), 1e-9);
  }
}

TEST_P(FuzzyPropertyTest, AdditionAssociates) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    const auto c = randomInterval(rng_);
    EXPECT_TRUE(((a + b) + c).approxEquals(a + (b + c), 1e-9));
  }
}

TEST_P(FuzzyPropertyTest, SubtractionIsAdditionOfNegation) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    EXPECT_TRUE((a - b).approxEquals(a + (-b), 1e-9));
  }
}

TEST_P(FuzzyPropertyTest, SubDistributivity) {
  // Fuzzy arithmetic is sub-distributive: a is contained in (a - b) + b.
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    EXPECT_TRUE(a.subsetOf((a - b) + b));
  }
}

TEST_P(FuzzyPropertyTest, MultiplicationExtensionPrincipleContainment) {
  // Every product of support points lies in the product's support; every
  // product of core points lies in the product's core.
  for (int i = 0; i < 30; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    const auto p = a * b;
    std::uniform_real_distribution<double> ua(a.support().lo, a.support().hi);
    std::uniform_real_distribution<double> ub(b.support().lo, b.support().hi);
    for (int s = 0; s < 20; ++s) {
      const double prod = ua(rng_) * ub(rng_);
      EXPECT_GE(prod, p.support().lo - 1e-9);
      EXPECT_LE(prod, p.support().hi + 1e-9);
    }
    const double coreProd = a.coreMidpoint() * b.coreMidpoint();
    EXPECT_GE(coreProd, p.support().lo - 1e-9);
    EXPECT_LE(coreProd, p.support().hi + 1e-9);
  }
}

TEST_P(FuzzyPropertyTest, DivisionInverseContainment) {
  for (int i = 0; i < 30; ++i) {
    const auto a = randomPositive(rng_);
    const auto b = randomPositive(rng_);
    const auto q = a / b;
    // a/b * b contains a (sub-distributivity of fuzzy division).
    EXPECT_TRUE(a.subsetOf(q * b));
  }
}

TEST_P(FuzzyPropertyTest, ScalingConsistentWithMultiplication) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    std::uniform_real_distribution<double> us(-4.0, 4.0);
    const double s = us(rng_);
    if (std::abs(s) < 1e-6) continue;
    EXPECT_TRUE((a * s).approxEquals(a * FuzzyInterval::crisp(s), 1e-9));
  }
}

TEST_P(FuzzyPropertyTest, MembershipIsOneOnCoreZeroOutsideSupport) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    EXPECT_DOUBLE_EQ(a.membership(a.coreMidpoint()), 1.0);
    EXPECT_DOUBLE_EQ(a.membership(a.support().lo - 1.0), 0.0);
    EXPECT_DOUBLE_EQ(a.membership(a.support().hi + 1.0), 0.0);
  }
}

TEST_P(FuzzyPropertyTest, AlphaCutsAreNested) {
  for (int i = 0; i < 30; ++i) {
    const auto a = randomInterval(rng_);
    Cut prev = a.alphaCut(0.0);
    for (double level = 0.1; level <= 1.0; level += 0.1) {
      const Cut cur = a.alphaCut(level);
      EXPECT_GE(cur.lo, prev.lo - 1e-12);
      EXPECT_LE(cur.hi, prev.hi + 1e-12);
      prev = cur;
    }
  }
}

TEST_P(FuzzyPropertyTest, DcIsInUnitRange) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    const auto c = degreeOfConsistency(a, b);
    EXPECT_GE(c.dc, 0.0);
    EXPECT_LE(c.dc, 1.0);
  }
}

TEST_P(FuzzyPropertyTest, DcOneWhenSubset) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    // Nominal strictly wider than the measurement on both sides.
    const auto wide = a.widened(1.0).hull(a);
    EXPECT_NEAR(degreeOfConsistency(a, wide).dc, 1.0, 1e-9);
  }
}

TEST_P(FuzzyPropertyTest, DcZeroIffSupportsDisjoint) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_, -10.0, -5.0);
    const auto b = randomInterval(rng_, 5.0, 10.0);
    if (a.supportsOverlap(b)) continue;
    EXPECT_DOUBLE_EQ(degreeOfConsistency(a, b).dc, 0.0);
    EXPECT_DOUBLE_EQ(degreeOfConsistency(b, a).dc, 0.0);
  }
}

TEST_P(FuzzyPropertyTest, DcSelfConsistency) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    EXPECT_NEAR(degreeOfConsistency(a, a).dc, 1.0, 1e-9);
  }
}

TEST_P(FuzzyPropertyTest, PossibilityBoundsNecessity) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    EXPECT_LE(necessity(a, b), possibility(a, b) + 1e-9);
  }
}

TEST_P(FuzzyPropertyTest, HullIsUpperBound) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const auto b = randomInterval(rng_);
    const auto h = a.hull(b);
    EXPECT_TRUE(a.subsetOf(h));
    EXPECT_TRUE(b.subsetOf(h));
  }
}

TEST_P(FuzzyPropertyTest, CentroidWithinSupport) {
  for (int i = 0; i < 50; ++i) {
    const auto a = randomInterval(rng_);
    const double c = a.centroid();
    EXPECT_GE(c, a.support().lo - 1e-9);
    EXPECT_LE(c, a.support().hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzyPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace flames::fuzzy
