#include "fuzzy/piecewise_linear.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flames::fuzzy {
namespace {

TEST(PiecewiseLinear, EmptyIsZeroEverywhere) {
  PiecewiseLinear f;
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.evaluate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(42.0), 0.0);
  EXPECT_DOUBLE_EQ(f.area(), 0.0);
  EXPECT_DOUBLE_EQ(f.height(), 0.0);
}

TEST(PiecewiseLinear, TrapezoidEvaluation) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(f.evaluate(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f.evaluate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.evaluate(1.5), 1.0);
  EXPECT_DOUBLE_EQ(f.evaluate(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f.evaluate(3.0), 0.5);
  EXPECT_DOUBLE_EQ(f.evaluate(4.0), 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(5.0), 0.0);
}

TEST(PiecewiseLinear, TrapezoidRejectsBadOrder) {
  EXPECT_THROW(PiecewiseLinear::trapezoid(1.0, 0.0, 2.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear::trapezoid(0.0, 2.0, 1.0, 3.0),
               std::invalid_argument);
}

TEST(PiecewiseLinear, TrapezoidArea) {
  // Area = (top + bottom) / 2 * height: ((2-1) + (4-0)) / 2 = 2.5.
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 4.0);
  EXPECT_NEAR(f.area(), 2.5, 1e-12);
}

TEST(PiecewiseLinear, TriangleArea) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 1.0, 2.0);
  EXPECT_NEAR(f.area(), 1.0, 1e-12);
}

TEST(PiecewiseLinear, RectangleAreaWithJumps) {
  // Crisp interval membership: vertical edges at both ends.
  const auto f = PiecewiseLinear::trapezoid(1.0, 1.0, 3.0, 3.0);
  EXPECT_NEAR(f.area(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.evaluate(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f.evaluate(0.999), 0.0);
}

TEST(PiecewiseLinear, HeightOfScaled) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 3.0).scaled(0.25);
  EXPECT_DOUBLE_EQ(f.height(), 0.25);
  EXPECT_NEAR(f.area(), 2.0 * 0.25, 1e-12);
}

TEST(PiecewiseLinear, ScaledRejectsNegative) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 3.0);
  EXPECT_THROW(f.scaled(-1.0), std::invalid_argument);
}

TEST(PiecewiseLinear, CentroidOfSymmetricTriangle) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 1.0, 2.0);
  EXPECT_NEAR(f.centroid(), 1.0, 1e-9);
}

TEST(PiecewiseLinear, CentroidOfRectangle) {
  const auto f = PiecewiseLinear::trapezoid(2.0, 2.0, 6.0, 6.0);
  EXPECT_NEAR(f.centroid(), 4.0, 1e-9);
}

TEST(PiecewiseLinear, MinOfDisjointIsZero) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 1.0, 2.0);
  const auto g = PiecewiseLinear::trapezoid(5.0, 6.0, 6.0, 7.0);
  EXPECT_NEAR(f.min(g).area(), 0.0, 1e-12);
}

TEST(PiecewiseLinear, MinOfIdenticalIsIdentity) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 3.0);
  const auto m = f.min(f);
  EXPECT_NEAR(m.area(), f.area(), 1e-12);
  for (double x = -0.5; x <= 3.5; x += 0.1) {
    EXPECT_NEAR(m.evaluate(x), f.evaluate(x), 1e-12) << "x=" << x;
  }
}

TEST(PiecewiseLinear, MinOfOverlappingTriangles) {
  // Triangles peaking at 1 and 2, overlapping on [0,3]; min peaks at the
  // crossing x = 1.5 with value 0.5.
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 1.0, 2.0);
  const auto g = PiecewiseLinear::trapezoid(1.0, 2.0, 2.0, 3.0);
  const auto m = f.min(g);
  EXPECT_NEAR(m.evaluate(1.5), 0.5, 1e-12);
  EXPECT_NEAR(m.evaluate(1.0), 0.0, 1e-12);
  EXPECT_NEAR(m.evaluate(2.0), 0.0, 1e-12);
  // Area of the little triangle: base 2 (from 1 to... the min is a triangle
  // from x=1 to x=2 with peak 0.5 at 1.5: area = 0.5 * 1 * 0.5 = 0.25.
  EXPECT_NEAR(m.area(), 0.25, 1e-12);
}

TEST(PiecewiseLinear, MaxOfOverlappingTriangles) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 1.0, 2.0);
  const auto g = PiecewiseLinear::trapezoid(1.0, 2.0, 2.0, 3.0);
  const auto m = f.max(g);
  EXPECT_NEAR(m.evaluate(1.0), 1.0, 1e-12);
  EXPECT_NEAR(m.evaluate(2.0), 1.0, 1e-12);
  EXPECT_NEAR(m.evaluate(1.5), 0.5, 1e-12);
  // max area = area(f) + area(g) - area(min) = 1 + 1 - 0.25.
  EXPECT_NEAR(m.area(), 1.75, 1e-12);
}

TEST(PiecewiseLinear, MinRectangleAgainstTriangle) {
  const auto rect = PiecewiseLinear::trapezoid(0.0, 0.0, 2.0, 2.0);
  const auto tri = PiecewiseLinear::trapezoid(1.0, 2.0, 2.0, 3.0);
  const auto m = rect.min(tri);
  // Inside [1,2] the triangle rises 0 -> 1 and the rectangle is 1: min is
  // the rising edge; outside [0,2] rect is 0; beyond 2 rect is 0.
  EXPECT_NEAR(m.evaluate(1.5), 0.5, 1e-12);
  EXPECT_NEAR(m.evaluate(2.5), 0.0, 1e-12);
  EXPECT_NEAR(m.area(), 0.5, 1e-12);
}

TEST(PiecewiseLinear, ClipCapsHeight) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 2.0, 2.0, 4.0);  // triangle
  const auto c = f.clip(0.5);
  EXPECT_NEAR(c.height(), 0.5, 1e-12);
  EXPECT_NEAR(c.evaluate(2.0), 0.5, 1e-12);
  EXPECT_NEAR(c.evaluate(0.5), 0.25, 1e-12);
  // Clipped triangle = trapezoid with top from 1 to 3 at 0.5:
  // area = (4 + 2)/2 * 0.5 = 1.5.
  EXPECT_NEAR(c.area(), 1.5, 1e-12);
}

TEST(PiecewiseLinear, MinAgainstEmptyIsEmptyArea) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 3.0);
  EXPECT_NEAR(f.min(PiecewiseLinear()).area(), 0.0, 1e-12);
  EXPECT_NEAR(PiecewiseLinear().min(f).area(), 0.0, 1e-12);
}

TEST(PiecewiseLinear, MaxAgainstEmptyIsIdentity) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 3.0);
  EXPECT_NEAR(f.max(PiecewiseLinear()).area(), f.area(), 1e-12);
}

TEST(PiecewiseLinear, MinCommutes) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 2.0, 4.0);
  const auto g = PiecewiseLinear::trapezoid(0.5, 2.0, 2.0, 3.0);
  EXPECT_NEAR(f.min(g).area(), g.min(f).area(), 1e-12);
}

TEST(PiecewiseLinear, DisjointSupportsMaxKeepsBothBumps) {
  const auto f = PiecewiseLinear::trapezoid(0.0, 1.0, 1.0, 2.0);
  const auto g = PiecewiseLinear::trapezoid(5.0, 6.0, 6.0, 7.0);
  const auto m = f.max(g);
  EXPECT_NEAR(m.area(), 2.0, 1e-12);
  EXPECT_NEAR(m.evaluate(3.5), 0.0, 1e-12);
  EXPECT_NEAR(m.evaluate(1.0), 1.0, 1e-12);
  EXPECT_NEAR(m.evaluate(6.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace flames::fuzzy
