#include "fuzzy/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fuzzy/linguistic.h"

namespace flames::fuzzy {
namespace {

TEST(ShannonTerm, Endpoints) {
  EXPECT_DOUBLE_EQ(shannonTerm(0.0), 0.0);
  EXPECT_DOUBLE_EQ(shannonTerm(1.0), 0.0);
  EXPECT_NEAR(shannonTerm(0.5), 0.5, 1e-12);
  // Max at 1/e.
  const double peak = shannonTerm(1.0 / std::exp(1.0));
  EXPECT_GT(peak, shannonTerm(0.3));
  EXPECT_GT(peak, shannonTerm(0.45));
}

TEST(EntropyTerm, CrispInputsReduceToShannon) {
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const auto term = entropyTerm(FuzzyInterval::crisp(x));
    EXPECT_NEAR(term.coreMidpoint(), shannonTerm(x), 1e-12) << "x=" << x;
    EXPECT_TRUE(term.isPoint());
  }
}

TEST(EntropyTerm, CertainlyCorrectComponentContributesNothing) {
  const auto term = entropyTerm(FuzzyInterval::crisp(0.0));
  EXPECT_NEAR(term.centroid(), 0.0, 1e-12);
}

TEST(EntropyTerm, TiedSemanticsContainsPeakWhenCutStraddles) {
  // The estimation [0.2, 0.6] straddles 1/e, so the tied image must reach
  // the peak value of h.
  const auto f = FuzzyInterval::crispInterval(0.2, 0.6);
  const auto term = entropyTerm(f, EntropyTermSemantics::kTied);
  const double peak = shannonTerm(1.0 / std::exp(1.0));
  EXPECT_NEAR(term.support().hi, peak, 1e-12);
}

TEST(EntropyTerm, IndependentIsWiderThanTied) {
  const auto f = FuzzyInterval(0.3, 0.5, 0.1, 0.1);
  const auto tied = entropyTerm(f, EntropyTermSemantics::kTied);
  const auto indep = entropyTerm(f, EntropyTermSemantics::kIndependent);
  EXPECT_GE(indep.support().hi, tied.support().hi - 1e-9);
}

TEST(FuzzyEntropy, EmptySystemIsZero) {
  EXPECT_TRUE(fuzzyEntropy({}).isPoint());
  EXPECT_DOUBLE_EQ(crispEntropy({}), 0.0);
}

TEST(FuzzyEntropy, AdditiveOverComponents) {
  const auto f = FuzzyInterval::crisp(0.5);
  const auto one = fuzzyEntropy({f});
  const auto two = fuzzyEntropy({f, f});
  EXPECT_NEAR(two.coreMidpoint(), 2.0 * one.coreMidpoint(), 1e-12);
}

TEST(FuzzyEntropy, UncertainSystemHasHigherEntropyThanResolvedOne) {
  // All components unknown vs one suspect, rest correct — the paper's whole
  // point: a discriminating test lowers entropy.
  const auto scale = LinguisticScale::defaultFaultiness();
  const auto unknown = scale.meaningOf("unknown");
  const auto correct = scale.meaningOf("correct");
  const auto faulty = scale.meaningOf("faulty");

  const double before =
      crispEntropy({unknown, unknown, unknown, unknown});
  const double after = crispEntropy({faulty, correct, correct, correct});
  EXPECT_GT(before, after);
}

TEST(FuzzyEntropy, OutOfRangeEstimationsAreClamped) {
  // Slightly out-of-unit supports (numerical noise) must not blow up.
  const FuzzyInterval f(0.0, 1.0, 0.2, 0.2);
  const auto e = fuzzyEntropy({f});
  EXPECT_GE(e.support().lo, -1e-9);
}

TEST(FuzzyEntropy, MonotoneInUncertaintySpread) {
  // A wider estimation cannot make the entropy support narrower.
  const auto narrow = entropyTerm(FuzzyInterval::about(0.3, 0.02));
  const auto wide = entropyTerm(FuzzyInterval::about(0.3, 0.15));
  EXPECT_GE(wide.support().width(), narrow.support().width());
}

class EntropyCrispSweep : public ::testing::TestWithParam<double> {};

TEST_P(EntropyCrispSweep, TermIsNonNegativeAndBounded) {
  const double x = GetParam();
  const auto term = entropyTerm(FuzzyInterval::crisp(x));
  EXPECT_GE(term.centroid(), -1e-12);
  // max of -x log2 x on [0,1] is log2(e)/e ~ 0.5307.
  EXPECT_LE(term.centroid(), 0.54);
}

INSTANTIATE_TEST_SUITE_P(UnitSweep, EntropyCrispSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 1.0 / std::exp(1.0),
                                           0.4, 0.5, 0.6, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace flames::fuzzy
