#include "atms/candidates.h"

#include <gtest/gtest.h>

namespace flames::atms {
namespace {

TEST(HittingSets, EmptyInputYieldsEmptyCandidate) {
  const auto hits = minimalHittingSets({});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits.front().empty());
}

TEST(HittingSets, UnhittableEmptySet) {
  EXPECT_TRUE(minimalHittingSets({{}}).empty());
  EXPECT_TRUE(minimalHittingSets({{1}, {}}).empty());
}

TEST(HittingSets, SingleSet) {
  const auto hits = minimalHittingSets({{1, 2}});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (std::vector<AssumptionId>{1}));
  EXPECT_EQ(hits[1], (std::vector<AssumptionId>{2}));
}

TEST(HittingSets, PaperFig5Candidates) {
  // Nogoods {r1,d1} and {r2,d1} (ids: r1=0, r2=1, d1=2):
  // minimal hitting sets are {d1} and {r1,r2} — exactly the paper's
  // "CANDIDATES: [d1] or [r1,r2]".
  const auto hits = minimalHittingSets({{0, 2}, {1, 2}});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (std::vector<AssumptionId>{2}));
  EXPECT_EQ(hits[1], (std::vector<AssumptionId>{0, 1}));
}

TEST(HittingSets, MinimalityFiltering) {
  // {1} hits both sets; any superset must be filtered out.
  const auto hits = minimalHittingSets({{1, 2}, {1, 3}});
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front(), (std::vector<AssumptionId>{1}));
  for (const auto& h : hits) {
    if (h.size() == 2) {
      EXPECT_TRUE((h == std::vector<AssumptionId>{2, 3}));
    }
  }
}

TEST(HittingSets, CardinalityBound) {
  // Three pairwise-disjoint sets need cardinality 3; bounding at 2 finds
  // nothing.
  const auto hits = minimalHittingSets({{1}, {2}, {3}}, 2);
  EXPECT_TRUE(hits.empty());
  const auto full = minimalHittingSets({{1}, {2}, {3}}, 3);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full.front(), (std::vector<AssumptionId>{1, 2, 3}));
}

TEST(ComponentSuspicion, MaxOverNogoods) {
  NogoodDb db;
  db.add(Environment::of({0, 2}), 0.5);
  db.add(Environment::of({1, 2}), 1.0);
  const auto s = componentSuspicion(db);
  EXPECT_DOUBLE_EQ(s.at(0), 0.5);
  EXPECT_DOUBLE_EQ(s.at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2), 1.0);
}

TEST(Candidates, PaperFig5Ranking) {
  // The fuzzy version of Fig. 5: nogood {r1,d1} degree 0.5, {r2,d1}
  // degree 1. At lambda=0.01 both count: candidates {d1} and {r1,r2},
  // with {d1} (suspicion 1) ranked above {r1,r2} (suspicion 0.5).
  NogoodDb db;
  db.add(Environment::of({0, 2}), 0.5);  // {r1, d1}
  db.add(Environment::of({1, 2}), 1.0);  // {r2, d1}
  const auto cands = candidatesAt(db, 0.01);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].members, (std::vector<AssumptionId>{2}));
  EXPECT_DOUBLE_EQ(cands[0].suspicion, 1.0);
  EXPECT_EQ(cands[1].members, (std::vector<AssumptionId>{0, 1}));
  EXPECT_DOUBLE_EQ(cands[1].suspicion, 0.5);
}

TEST(Candidates, LambdaCutRestrictsExplosion) {
  // At lambda=1 only the hard nogood {r2,d1} matters: candidates shrink to
  // singletons {d1}, {r2} — the paper's "restrict the effect of explosion".
  NogoodDb db;
  db.add(Environment::of({0, 2}), 0.5);
  db.add(Environment::of({1, 2}), 1.0);
  const auto cands = candidatesAt(db, 1.0);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].members.size(), 1u);
  EXPECT_EQ(cands[1].members.size(), 1u);
}

TEST(Candidates, LatticeEnumeratesAllDegrees) {
  NogoodDb db;
  db.add(Environment::of({0}), 0.3);
  db.add(Environment::of({1}), 0.7);
  db.add(Environment::of({2}), 1.0);
  const auto lattice = candidateLattice(db);
  ASSERT_EQ(lattice.size(), 3u);
  EXPECT_DOUBLE_EQ(lattice[0].first, 1.0);
  EXPECT_DOUBLE_EQ(lattice[1].first, 0.7);
  EXPECT_DOUBLE_EQ(lattice[2].first, 0.3);
  // Stronger cuts have fewer nogoods to hit => smaller candidates.
  EXPECT_EQ(lattice[0].second.front().members.size(), 1u);
  EXPECT_EQ(lattice[2].second.front().members.size(), 3u);
}

TEST(Candidates, NoNogoodsMeansEmptyCandidate) {
  NogoodDb db;
  const auto cands = candidatesAt(db, 0.5);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands.front().members.empty());
}

TEST(HittingSets, MaxCandidatesCapRespected) {
  // A single 6-element conflict has 6 singleton hitting sets; the cap
  // truncates enumeration.
  const auto hits = minimalHittingSets({{1, 2, 3, 4, 5, 6}}, 4, 3);
  EXPECT_LE(hits.size(), 3u);
  EXPECT_FALSE(hits.empty());
}

TEST(ComponentSuspicion, EmptyDbGivesEmptyMap) {
  NogoodDb db;
  EXPECT_TRUE(componentSuspicion(db).empty());
}

TEST(Candidates, SuspicionOfEmptyCandidateIsZero) {
  NogoodDb db;
  const auto cands = candidatesAt(db, 0.5);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_DOUBLE_EQ(cands.front().suspicion, 0.0);
}

TEST(Candidates, MultiFaultScenario) {
  // Two independent hard conflicts on disjoint component sets force a
  // double-fault candidate.
  NogoodDb db;
  db.add(Environment::of({0, 1}), 1.0);
  db.add(Environment::of({2, 3}), 1.0);
  const auto cands = candidatesAt(db, 1.0);
  ASSERT_EQ(cands.size(), 4u);
  for (const auto& c : cands) EXPECT_EQ(c.members.size(), 2u);
}

}  // namespace
}  // namespace flames::atms
