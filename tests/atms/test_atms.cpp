#include "atms/atms.h"

#include <gtest/gtest.h>

namespace flames::atms {
namespace {

TEST(NogoodDb, AddAndQuery) {
  NogoodDb db;
  EXPECT_TRUE(db.add(Environment::of({1, 2}), 1.0));
  EXPECT_TRUE(db.isInconsistent(Environment::of({1, 2, 3})));
  EXPECT_FALSE(db.isInconsistent(Environment::of({1, 3})));
  EXPECT_DOUBLE_EQ(db.degreeOf(Environment::of({1, 2})), 1.0);
  EXPECT_DOUBLE_EQ(db.degreeOf(Environment::of({1})), 0.0);
}

TEST(NogoodDb, SubsumptionByStrongerSmaller) {
  NogoodDb db;
  EXPECT_TRUE(db.add(Environment::of({1}), 1.0));
  // Superset with weaker-or-equal degree is redundant.
  EXPECT_FALSE(db.add(Environment::of({1, 2}), 0.8));
  EXPECT_FALSE(db.add(Environment::of({1, 2}), 1.0));
  EXPECT_EQ(db.size(), 1u);
}

TEST(NogoodDb, NewEntryRemovesSubsumed) {
  NogoodDb db;
  EXPECT_TRUE(db.add(Environment::of({1, 2}), 0.7));
  EXPECT_TRUE(db.add(Environment::of({1}), 0.9));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.degreeOf(Environment::of({1, 2})), 0.9);
}

TEST(NogoodDb, PartialDegreesCoexistWithHard) {
  NogoodDb db;
  // A weak conflict on a small env and a hard one on a bigger env both
  // carry information; neither subsumes the other.
  EXPECT_TRUE(db.add(Environment::of({1}), 0.3));
  EXPECT_TRUE(db.add(Environment::of({1, 2}), 1.0));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_FALSE(db.isInconsistent(Environment::of({1}), 1.0));
  EXPECT_TRUE(db.isInconsistent(Environment::of({1}), 0.3));
}

TEST(NogoodDb, MinimalNogoodsLambdaCut) {
  NogoodDb db;
  db.add(Environment::of({1, 2}), 0.5);
  db.add(Environment::of({2, 3}), 1.0);
  db.add(Environment::of({1, 2, 4}), 0.4);  // subsumed at lambda 0.4? no:
  // {1,2} deg .5 subsumes {1,2,4} deg .4 at insertion time.
  EXPECT_EQ(db.size(), 2u);
  const auto all = db.minimalNogoods(0.0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all.front().degree, 1.0);  // sorted by degree desc
  const auto hard = db.minimalNogoods(1.0);
  ASSERT_EQ(hard.size(), 1u);
  EXPECT_EQ(hard.front().env, Environment::of({2, 3}));
}

TEST(Atms, AssumptionHasSingletonLabel) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  ASSERT_EQ(atms.label(a).size(), 1u);
  EXPECT_EQ(atms.label(a).front().env.size(), 1u);
  EXPECT_TRUE(atms.isAssumption(a));
  EXPECT_TRUE(atms.isIn(a));
  EXPECT_EQ(atms.datum(a), "A");
}

TEST(Atms, JustificationPropagatesUnion) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  const NodeId n = atms.addNode("n");
  atms.justify({a, b}, n);
  ASSERT_EQ(atms.label(n).size(), 1u);
  EXPECT_EQ(atms.label(n).front().env.size(), 2u);
}

TEST(Atms, LabelMinimality) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  const NodeId n = atms.addNode("n");
  atms.justify({a, b}, n);  // {A,B}
  atms.justify({a}, n);     // {A} subsumes {A,B}
  ASSERT_EQ(atms.label(n).size(), 1u);
  EXPECT_EQ(atms.label(n).front().env.size(), 1u);
}

TEST(Atms, ChainedPropagation) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId n1 = atms.addNode("n1");
  const NodeId n2 = atms.addNode("n2");
  atms.justify({n1}, n2);  // installed before n1 has a label
  atms.justify({a}, n1);
  EXPECT_TRUE(atms.isIn(n2));
  EXPECT_TRUE(atms.holdsIn(n2, Environment::of({0})));
}

TEST(Atms, ContradictionCreatesNogoodAndPrunes) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  const NodeId n = atms.addNode("n");
  atms.justify({a, b}, n);
  EXPECT_TRUE(atms.isIn(n));
  atms.justify({a, b}, atms.contradiction());
  EXPECT_EQ(atms.nogoods().size(), 1u);
  // n's only environment {A,B} is now inconsistent: label empties.
  EXPECT_FALSE(atms.isIn(n));
  // The assumptions themselves survive (singletons are consistent).
  EXPECT_TRUE(atms.isIn(a));
}

TEST(Atms, InconsistentEnvironmentsNeverEnterLabels) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  atms.addNogood(Environment::of({0, 1}), 1.0);
  const NodeId n = atms.addNode("n");
  atms.justify({a, b}, n);
  EXPECT_FALSE(atms.isIn(n));
}

TEST(Atms, FuzzyJustificationDegreesTakeMin) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId n1 = atms.addNode("n1");
  const NodeId n2 = atms.addNode("n2");
  atms.justify({a}, n1, 0.8);
  atms.justify({n1}, n2, 0.6);
  ASSERT_EQ(atms.label(n2).size(), 1u);
  EXPECT_DOUBLE_EQ(atms.label(n2).front().degree, 0.6);
  EXPECT_TRUE(atms.isIn(n2, 0.5));
  EXPECT_FALSE(atms.isIn(n2, 0.7));
}

TEST(Atms, PartialNogoodDoesNotPruneByDefault) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId n = atms.addNode("n");
  atms.justify({a}, n);
  atms.addNogood(Environment::of({0}), 0.5);  // partial conflict on {A}
  EXPECT_TRUE(atms.isIn(n));  // still believed (degree-1 threshold)
  EXPECT_DOUBLE_EQ(atms.nogoods().degreeOf(Environment::of({0})), 0.5);
}

TEST(Atms, LoweredHardThresholdPrunesPartials) {
  Atms atms;
  atms.setHardConflictThreshold(0.4);
  const NodeId a = atms.addAssumption("A");
  const NodeId n = atms.addNode("n");
  atms.justify({a}, n);
  atms.addNogood(Environment::of({0}), 0.5);
  EXPECT_FALSE(atms.isIn(n));
}

TEST(Atms, PremiseGivesEmptyEnvironment) {
  Atms atms;
  const NodeId n = atms.addNode("n");
  atms.premise(n);
  ASSERT_EQ(atms.label(n).size(), 1u);
  EXPECT_TRUE(atms.label(n).front().env.empty());
  EXPECT_THROW(atms.premise(atms.contradiction()), std::invalid_argument);
}

TEST(Atms, DiamondDerivationKeepsMinimalEnvs) {
  // n derivable via {A} and via {B}: label holds both minimal envs.
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  const NodeId n = atms.addNode("n");
  atms.justify({a}, n);
  atms.justify({b}, n);
  EXPECT_EQ(atms.label(n).size(), 2u);
}

TEST(Atms, GdeStyleConflictScenario) {
  // Classic GDE pattern: prediction from {A,B} conflicts with one from
  // {C}; the nogood is {A,B,C}; retracting any one member restores
  // consistency.
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  const NodeId c = atms.addAssumption("C");
  const NodeId p1 = atms.addNode("pred1");
  const NodeId p2 = atms.addNode("pred2");
  atms.justify({a, b}, p1);
  atms.justify({c}, p2);
  atms.justify({p1, p2}, atms.contradiction());
  ASSERT_EQ(atms.nogoods().size(), 1u);
  EXPECT_EQ(atms.nogoods().all().front().env.size(), 3u);
  EXPECT_TRUE(
      atms.nogoods().isInconsistent(Environment::of({0, 1, 2})));
  EXPECT_FALSE(atms.nogoods().isInconsistent(Environment::of({0, 1})));
}

TEST(Atms, BadNodeIdsThrow) {
  Atms atms;
  EXPECT_THROW((void)atms.label(99), std::out_of_range);
  EXPECT_THROW((void)atms.datum(99), std::out_of_range);
  EXPECT_THROW(atms.justify({99}, 0), std::out_of_range);
}

TEST(Atms, ExplainAssumptionAndPremise) {
  Atms atms;
  const NodeId a = atms.addAssumption("ok(R1)");
  const auto trace = atms.explain(a);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.front(), "ok(R1): assumption");

  const NodeId p = atms.addNode("ground");
  atms.premise(p);
  const auto ptrace = atms.explain(p);
  ASSERT_EQ(ptrace.size(), 1u);
  EXPECT_EQ(ptrace.front(), "ground: premise");
}

TEST(Atms, ExplainChainListsLeavesFirst) {
  Atms atms;
  const NodeId a = atms.addAssumption("ok(R1)");
  const NodeId b = atms.addAssumption("ok(R2)");
  const NodeId v = atms.addNode("v1");
  const NodeId i = atms.addNode("i1");
  atms.justify({a}, v, 1.0, "ohm");
  atms.justify({v, b}, i, 1.0, "kcl");
  const auto trace = atms.explain(i);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], "ok(R1): assumption");
  EXPECT_EQ(trace[1], "v1 <= [ohm] (ok(R1))");
  EXPECT_EQ(trace[2], "ok(R2): assumption");
  EXPECT_EQ(trace[3], "i1 <= [kcl] (v1, ok(R2))");
}

TEST(Atms, ExplainRespectsEnvironment) {
  // Diamond: n derivable via {A} or via {B}. Explaining under {B} must use
  // the B route.
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId b = atms.addAssumption("B");
  const NodeId n = atms.addNode("n");
  atms.justify({a}, n, 1.0, "viaA");
  atms.justify({b}, n, 1.0, "viaB");
  const auto trace = atms.explain(n, Environment::of({1}));  // B only
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], "B: assumption");
  EXPECT_EQ(trace[1], "n <= [viaB] (B)");
}

TEST(Atms, ExplainEmptyWhenNotHeld) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId n = atms.addNode("n");
  atms.justify({a}, n);
  EXPECT_TRUE(atms.explain(n, Environment{}).empty());
  const NodeId orphan = atms.addNode("orphan");
  EXPECT_TRUE(atms.explain(orphan).empty());
}

TEST(Atms, ExplainCarriesDegrees) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId n = atms.addNode("n");
  atms.justify({a}, n, 0.8, "weak-rule");
  const auto trace = atms.explain(n);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_NE(trace[1].find("degree 0.8"), std::string::npos);
}

TEST(Atms, AssumptionIdOf) {
  Atms atms;
  const NodeId a = atms.addAssumption("A");
  const NodeId n = atms.addNode("n");
  EXPECT_TRUE(atms.assumptionIdOf(a).has_value());
  EXPECT_FALSE(atms.assumptionIdOf(n).has_value());
}

}  // namespace
}  // namespace flames::atms
