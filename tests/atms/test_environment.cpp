#include "atms/environment.h"

#include <gtest/gtest.h>

namespace flames::atms {
namespace {

TEST(Environment, EmptyBasics) {
  Environment e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0u);
  EXPECT_FALSE(e.contains(0));
  EXPECT_TRUE(e.isSubsetOf(Environment{}));
}

TEST(Environment, InsertContains) {
  Environment e;
  e.insert(3);
  e.insert(70);  // crosses the 64-bit word boundary
  EXPECT_TRUE(e.contains(3));
  EXPECT_TRUE(e.contains(70));
  EXPECT_FALSE(e.contains(4));
  EXPECT_EQ(e.size(), 2u);
}

TEST(Environment, EraseAndNormalize) {
  Environment e = Environment::of({3, 70});
  e.erase(70);
  EXPECT_FALSE(e.contains(70));
  EXPECT_EQ(e.size(), 1u);
  e.erase(3);
  EXPECT_TRUE(e.empty());
  // Erasing a missing id is a no-op.
  e.erase(99);
  EXPECT_TRUE(e.empty());
}

TEST(Environment, SubsetTests) {
  const Environment small = Environment::of({1, 2});
  const Environment big = Environment::of({1, 2, 3});
  EXPECT_TRUE(small.isSubsetOf(big));
  EXPECT_FALSE(big.isSubsetOf(small));
  EXPECT_TRUE(small.isSubsetOf(small));
  EXPECT_TRUE(Environment{}.isSubsetOf(small));
  EXPECT_TRUE(big.isSupersetOf(small));
}

TEST(Environment, SubsetAcrossWordBoundary) {
  const Environment small = Environment::of({70});
  const Environment big = Environment::of({1, 70, 130});
  EXPECT_TRUE(small.isSubsetOf(big));
  EXPECT_FALSE(Environment::of({69}).isSubsetOf(big));
}

TEST(Environment, UnionWith) {
  const Environment a = Environment::of({1, 2});
  const Environment b = Environment::of({2, 70});
  const Environment u = a.unionWith(b);
  EXPECT_EQ(u, Environment::of({1, 2, 70}));
  EXPECT_TRUE(a.isSubsetOf(u));
  EXPECT_TRUE(b.isSubsetOf(u));
}

TEST(Environment, IntersectWith) {
  const Environment a = Environment::of({1, 2, 70});
  const Environment b = Environment::of({2, 70, 99});
  EXPECT_EQ(a.intersectWith(b), Environment::of({2, 70}));
  EXPECT_TRUE(a.intersectWith(Environment{}).empty());
}

TEST(Environment, Intersects) {
  EXPECT_TRUE(Environment::of({1, 2}).intersects(Environment::of({2, 3})));
  EXPECT_FALSE(Environment::of({1, 2}).intersects(Environment::of({3, 4})));
  EXPECT_FALSE(Environment{}.intersects(Environment::of({1})));
}

TEST(Environment, IdsAreSorted) {
  const Environment e = Environment::of({70, 1, 33});
  const std::vector<AssumptionId> expected{1, 33, 70};
  EXPECT_EQ(e.ids(), expected);
}

TEST(Environment, Str) {
  EXPECT_EQ(Environment::of({2, 1}).str(), "{1,2}");
  EXPECT_EQ(Environment{}.str(), "{}");
}

TEST(Environment, OrderingBySizeThenContent) {
  const Environment small = Environment::of({5});
  const Environment big = Environment::of({1, 2});
  EXPECT_TRUE(small.orderedBefore(big));
  EXPECT_FALSE(big.orderedBefore(small));
  EXPECT_FALSE(small.orderedBefore(small));
  const Environment other = Environment::of({6});
  EXPECT_TRUE(small.orderedBefore(other));
}

TEST(Environment, EqualityIgnoresConstructionOrder) {
  EXPECT_EQ(Environment::of({1, 2, 3}), Environment::of({3, 2, 1}));
  Environment viaErase = Environment::of({1, 2, 70});
  viaErase.erase(70);
  EXPECT_EQ(viaErase, Environment::of({1, 2}));
}

}  // namespace
}  // namespace flames::atms
