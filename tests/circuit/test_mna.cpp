#include "circuit/mna.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"

namespace flames::circuit {
namespace {

TEST(Mna, VoltageDivider) {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0);
  n.addResistor("R2", "mid", "0", 1.0);
  DcSolver solver(n);
  const auto op = solver.solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(solver.voltage(op, "mid"), 5.0, 1e-9);
  EXPECT_NEAR(solver.voltage(op, "in"), 10.0, 1e-9);
  EXPECT_NEAR(solver.current(op, "R1"), 5.0, 1e-9);
  EXPECT_NEAR(solver.current(op, "R2"), 5.0, 1e-9);
}

TEST(Mna, GainBlockChain) {
  Netlist n;
  n.addVSource("V1", "a", "0", 2.0);
  n.addGain("amp1", "a", "b", 3.0);
  n.addGain("amp2", "b", "c", -0.5);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(n.findNode("b")), 6.0, 1e-9);
  EXPECT_NEAR(op.v(n.findNode("c")), -3.0, 1e-9);
}

TEST(Mna, DiodeConductsWhenForwardBiased) {
  Netlist n;
  n.addVSource("V1", "in", "0", 5.0);
  n.addDiode("D1", "in", "k", 0.7);
  n.addResistor("R1", "k", "0", 1.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.states.at("D1"), DeviceState::kOn);
  EXPECT_NEAR(op.v(n.findNode("k")), 4.3, 1e-9);
  EXPECT_NEAR(op.branchCurrents.at("D1"), 4.3, 1e-9);
}

TEST(Mna, DiodeBlocksWhenReverseBiased) {
  Netlist n;
  n.addVSource("V1", "in", "0", -5.0);
  n.addDiode("D1", "in", "k", 0.7);
  n.addResistor("R1", "k", "0", 1.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.states.at("D1"), DeviceState::kOff);
  EXPECT_NEAR(op.v(n.findNode("k")), 0.0, 1e-9);
  EXPECT_NEAR(DcSolver(n).current(op, "D1"), 0.0, 1e-12);
}

TEST(Mna, NpnEmitterFollower) {
  // 10 V supply, base driven at 5 V, emitter resistor 1 kOhm (values in V,
  // kOhm, mA): Ve = 4.3 V, Ie = 4.3 mA, Ib = Ie / (beta + 1).
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 10.0);
  n.addVSource("Vb", "b", "0", 5.0);
  n.addNpn("T1", "vcc", "b", "e", 99.0);
  n.addResistor("Re", "e", "0", 1.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.states.at("T1"), DeviceState::kOn);
  EXPECT_NEAR(op.v(n.findNode("e")), 4.3, 1e-9);
  const double ib = op.branchCurrents.at("T1");
  EXPECT_NEAR(ib * 100.0, 4.3, 1e-9);  // (beta+1) Ib = Ie
}

TEST(Mna, NpnCutoffWhenBaseLow) {
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 10.0);
  n.addVSource("Vb", "b", "0", 0.2);
  n.addNpn("T1", "vcc", "b", "e", 100.0);
  n.addResistor("Re", "e", "0", 1.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.states.at("T1"), DeviceState::kOff);
  EXPECT_NEAR(op.v(n.findNode("e")), 0.0, 1e-9);
}

TEST(Mna, CommonEmitterWithFeedbackBias) {
  // Stage 1 of the reconstructed Fig. 6 amplifier, standalone.
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 18.0);
  n.addResistor("R2", "vcc", "V1", 12.0);
  n.addResistor("R1", "V1", "N1", 200.0);
  n.addResistor("R3", "N1", "0", 24.0);
  n.addNpn("T1", "V1", "N1", "0", 300.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.states.at("T1"), DeviceState::kOn);
  // Hand-computed operating point: Ib ~ 2.92 uA, V1 ~ 7.12 V.
  EXPECT_NEAR(op.v(n.findNode("V1")), 7.12, 0.05);
  EXPECT_NEAR(op.v(n.findNode("N1")), 0.7, 1e-9);
  EXPECT_FALSE(op.saturationWarning);
}

TEST(Mna, Fig6ThreeStageAmpIsInLinearRegion) {
  const Netlist n = paperFig6ThreeStageAmp();
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_FALSE(op.saturationWarning);
  EXPECT_EQ(op.states.at("T1"), DeviceState::kOn);
  EXPECT_EQ(op.states.at("T2"), DeviceState::kOn);
  EXPECT_EQ(op.states.at("T3"), DeviceState::kOn);
  const double v1 = op.v(n.findNode("V1"));
  const double v2 = op.v(n.findNode("V2"));
  const double vs = op.v(n.findNode("Vs"));
  EXPECT_GT(v1, 1.0);
  EXPECT_LT(v1, 17.0);
  EXPECT_GT(v2, v1);   // stage 2 output sits above its base
  EXPECT_NEAR(vs, v2 - 0.7, 1e-6);  // follower output
}

TEST(Mna, SingularCircuitThrows) {
  // A node connected only through a gain input (draws no current) leaves
  // that node's KCL row empty.
  Netlist n;
  n.addVSource("V1", "a", "0", 1.0);
  n.addGain("amp", "floating", "out", 2.0);
  EXPECT_THROW((void)DcSolver(n).solve(), std::runtime_error);
}

TEST(Mna, CurrentOfUnknownComponentThrows) {
  Netlist n;
  n.addVSource("V1", "a", "0", 1.0);
  n.addResistor("R1", "a", "0", 1.0);
  DcSolver solver(n);
  const auto op = solver.solve();
  EXPECT_THROW((void)solver.current(op, "nope"), std::out_of_range);
}

TEST(Mna, SaturationWarningDetected) {
  // Common emitter with huge collector load saturates.
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 10.0);
  n.addVSource("Vb", "b", "0", 2.0);
  n.addResistor("Rb", "b", "bb", 1.0);
  n.addNpn("T1", "c", "bb", "0", 500.0);
  n.addResistor("Rc", "vcc", "c", 100.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_TRUE(op.saturationWarning);
}

}  // namespace
}  // namespace flames::circuit
