#include "circuit/ac.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/fault.h"

namespace flames::circuit {
namespace {

// Units: V / kOhm / mA => capacitance unit is microfarad-compatible
// (1/(kOhm * uF) = 1/ms); frequencies below are consistent within the unit
// system (hertz values are 1/(2 pi R C) style).

Netlist rcLowpass() {
  Netlist n;
  n.addVSource("Vin", "in", "0", 1.0);
  n.addResistor("R1", "in", "out", 1.0);     // 1 kOhm
  n.addCapacitor("C1", "out", "0", 1.0);     // 1 uF => fc = 1/(2 pi) kHz-ish
  return n;
}

TEST(Ac, LowpassDcGainIsUnity) {
  const AcSolver solver(rcLowpass());
  EXPECT_NEAR(solver.gainMagnitude(0.0, "Vin", "out"), 1.0, 1e-9);
}

TEST(Ac, LowpassCornerIsMinus3dB) {
  // fc = 1/(2 pi R C): |H| = 1/sqrt(2).
  const double fc = 1.0 / (2.0 * std::numbers::pi);
  const AcSolver solver(rcLowpass());
  EXPECT_NEAR(solver.gainMagnitude(fc, "Vin", "out"), 1.0 / std::sqrt(2.0),
              1e-9);
}

TEST(Ac, LowpassRollsOffAtHighFrequency) {
  const AcSolver solver(rcLowpass());
  const double g10 = solver.gainMagnitude(10.0, "Vin", "out");
  const double g100 = solver.gainMagnitude(100.0, "Vin", "out");
  EXPECT_LT(g10, 0.1);
  // One-pole rolloff: x10 frequency => x10 attenuation.
  EXPECT_NEAR(g10 / g100, 10.0, 0.2);
}

TEST(Ac, PhaseLagOfLowpass) {
  const double fc = 1.0 / (2.0 * std::numbers::pi);
  const AcSolver solver(rcLowpass());
  const auto point = solver.solve(2.0 * std::numbers::pi * fc, "Vin");
  const Netlist net = rcLowpass();
  EXPECT_NEAR(point.phaseDegrees(rcLowpass().findNode("out")), -45.0, 1e-6);
  (void)net;
}

TEST(Ac, HighpassWithInductor) {
  // R-L highpass: out across L. |H| -> 1 at high f, -> 0 at DC.
  Netlist n;
  n.addVSource("Vin", "in", "0", 1.0);
  n.addResistor("R1", "in", "out", 1.0);
  n.addInductor("L1", "out", "0", 1.0);
  const AcSolver solver(n);
  EXPECT_NEAR(solver.gainMagnitude(0.0, "Vin", "out"), 0.0, 1e-9);
  EXPECT_GT(solver.gainMagnitude(100.0, "Vin", "out"), 0.99);
}

TEST(Ac, InductorIsDcShort) {
  Netlist n;
  n.addVSource("Vin", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0);
  n.addInductor("L1", "mid", "out", 1.0);
  n.addResistor("R2", "out", "0", 1.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(n.findNode("mid")), op.v(n.findNode("out")), 1e-9);
  EXPECT_NEAR(op.v(n.findNode("out")), 5.0, 1e-9);
  EXPECT_NEAR(DcSolver(n).current(op, "L1"), 5.0, 1e-9);
}

TEST(Ac, CapacitorIsDcOpen) {
  Netlist n;
  n.addVSource("Vin", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0);
  n.addCapacitor("C1", "mid", "0", 1.0);
  n.addResistor("R2", "mid", "0", 1.0);
  const auto op = DcSolver(n).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(n.findNode("mid")), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(DcSolver(n).current(op, "C1"), 0.0);
}

TEST(Ac, GainBlockPassesThrough) {
  Netlist n;
  n.addVSource("Vin", "in", "0", 1.0);
  n.addGain("amp", "in", "out", 5.0);
  const AcSolver solver(n);
  EXPECT_NEAR(solver.gainMagnitude(1.0, "Vin", "out"), 5.0, 1e-9);
}

TEST(Ac, CommonEmitterAmplifierHasGain) {
  // Stage-1 of the Fig. 6 amplifier with an AC input coupled into the base
  // node through a capacitor: small-signal gain ~ -gm * (R2 || R1-ish)
  // must exceed 10x at mid-band.
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 18.0);
  n.addResistor("R2", "vcc", "V1", 12.0);
  n.addResistor("R1", "V1", "N1", 200.0);
  n.addResistor("R3", "N1", "0", 24.0);
  n.addNpn("T1", "V1", "N1", "0", 300.0);
  n.addVSource("Vsig", "sig", "0", 0.0);     // AC input, 0 V DC bias
  n.addResistor("Rs", "sig", "cin", 10.0);   // source resistance
  n.addCapacitor("Cc", "cin", "N1", 100.0);  // coupling cap
  const AcSolver solver(n);
  const double g = solver.gainMagnitude(10.0, "Vsig", "V1");
  EXPECT_GT(g, 10.0);
}

TEST(Ac, UnknownSourceThrows) {
  const Netlist n = rcLowpass();
  const AcSolver solver(n);
  EXPECT_THROW((void)solver.solve(1.0, "R1"), std::runtime_error);
  EXPECT_THROW((void)solver.solve(1.0, "nope"), std::out_of_range);
}

TEST(Ac, SweepHelperMatchesPointwise) {
  const Netlist n = rcLowpass();
  const std::vector<double> freqs = {0.01, 0.1, 1.0, 10.0};
  const auto sweep = acMagnitudeSweep(n, "Vin", "out", freqs);
  const AcSolver solver(n);
  ASSERT_EQ(sweep.size(), freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(sweep[i], solver.gainMagnitude(freqs[i], "Vin", "out"), 1e-12);
  }
  // Monotone rolloff for a one-pole filter.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i], sweep[i - 1]);
  }
}

TEST(Ac, MagnitudeDbOfUnityIsZero) {
  const AcSolver solver(rcLowpass());
  const auto p = solver.solve(0.0, "Vin");
  EXPECT_NEAR(p.magnitudeDb(rcLowpass().findNode("out")), 0.0, 1e-6);
}

TEST(Ac, NetlistValidation) {
  Netlist n;
  EXPECT_THROW(n.addCapacitor("C", "a", "0", 0.0), std::invalid_argument);
  EXPECT_THROW(n.addInductor("L", "a", "0", -1.0), std::invalid_argument);
  EXPECT_EQ(kindName(ComponentKind::kCapacitor), "capacitor");
  EXPECT_EQ(kindName(ComponentKind::kInductor), "inductor");
}

TEST(Ac, FaultedCapacitorChangesResponse) {
  const Netlist nominal = rcLowpass();
  const Netlist faulted = applyFaults(nominal, {Fault::open("C1")});
  const double fc = 1.0 / (2.0 * std::numbers::pi);
  const double gNominal = AcSolver(nominal).gainMagnitude(10.0 * fc, "Vin", "out");
  const double gFaulted = AcSolver(faulted).gainMagnitude(10.0 * fc, "Vin", "out");
  EXPECT_LT(gNominal, 0.2);
  EXPECT_GT(gFaulted, 0.9);  // open cap: no rolloff
}

}  // namespace
}  // namespace flames::circuit
