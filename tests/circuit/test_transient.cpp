#include "circuit/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/fault.h"

namespace flames::circuit {
namespace {

// Units: V / kOhm / mA / uF => time in ms.

Netlist rcCircuit() {
  Netlist n;
  n.addVSource("Vin", "in", "0", 0.0);
  n.addResistor("R1", "in", "out", 1.0);   // 1 kOhm
  n.addCapacitor("C1", "out", "0", 1.0);   // 1 uF => tau = 1 ms
  return n;
}

TEST(Transient, RcStepMatchesAnalyticCharge) {
  TransientOptions opts;
  opts.timeStep = 0.005;  // tau/200
  TransientSolver solver(rcCircuit(), opts);
  const auto v = solver.stepResponse("Vin", 5.0, "out", 5.0);
  const auto result = v;  // waveform at out
  // Compare against 5 (1 - e^{-t/tau}) at a few points.
  const double tau = 1.0;
  const double h = opts.timeStep;
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    const auto k = static_cast<std::size_t>(t / h);
    const double analytic = 5.0 * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(result.at(k), analytic, 0.05) << "t=" << t;
  }
  // Settles to the source level.
  EXPECT_NEAR(result.back(), 5.0, 0.05);
}

TEST(Transient, RcInitialConditionFromDc) {
  // Source held at 2 V: the capacitor starts charged and nothing moves.
  Netlist n = rcCircuit();
  n.component("Vin").value = 2.0;
  TransientSolver solver(n);
  const auto r = solver.run(2.0);
  for (double v : r.waveform(n.findNode("out"))) {
    EXPECT_NEAR(v, 2.0, 1e-9);
  }
}

TEST(Transient, RlStepCurrentRises) {
  // V -> R -> L to ground: i = V/R (1 - e^{-tR/L}); the node between R and
  // L starts at V (all drop across L) and decays to 0.
  Netlist n;
  n.addVSource("Vin", "in", "0", 0.0);
  n.addResistor("R1", "in", "mid", 1.0);
  n.addInductor("L1", "mid", "0", 1.0);  // tau = L/R = 1 ms
  TransientOptions opts;
  opts.timeStep = 0.005;
  TransientSolver solver(n, opts);
  const auto v = solver.stepResponse("Vin", 5.0, "mid", 5.0);
  // Just after the step the inductor blocks: v(mid) ~ 5 V.
  EXPECT_GT(v.at(2), 4.0);
  // Long after: inductor is a short: v(mid) ~ 0.
  EXPECT_NEAR(v.back(), 0.0, 0.05);
}

TEST(Transient, RiseTimeOfOnePoleIs2p2Tau) {
  TransientOptions opts;
  opts.timeStep = 0.002;
  TransientSolver solver(rcCircuit(), opts);
  solver.setWaveform("Vin", [](double t) { return t > 0.0 ? 1.0 : 0.0; });
  const auto r = solver.run(8.0);
  const double tr = riseTime(r.time, r.waveform(solver.netlist().findNode("out")));
  EXPECT_NEAR(tr, 2.2, 0.1);  // 2.197 tau for a single pole
}

TEST(Transient, FaultChangesTimeConstant) {
  // C1 drifted x2: the measured rise time doubles — the dynamic signature a
  // diagnoser can exploit.
  const Netlist nominal = rcCircuit();
  const Netlist faulted =
      applyFaults(nominal, {Fault::paramScale("C1", 2.0)});
  TransientOptions opts;
  opts.timeStep = 0.002;
  TransientSolver a(nominal, opts), b(faulted, opts);
  a.setWaveform("Vin", [](double t) { return t > 0.0 ? 1.0 : 0.0; });
  b.setWaveform("Vin", [](double t) { return t > 0.0 ? 1.0 : 0.0; });
  const auto ra = a.run(12.0);
  const auto rb = b.run(12.0);
  const double trA =
      riseTime(ra.time, ra.waveform(nominal.findNode("out")));
  const double trB = riseTime(rb.time, rb.waveform(faulted.findNode("out")));
  EXPECT_NEAR(trB / trA, 2.0, 0.1);
}

TEST(Transient, NonlinearCircuitDiodeClamp) {
  // Step into a diode clamp: the output follows the input but never exceeds
  // the clamp level Vf.
  Netlist n;
  n.addVSource("Vin", "in", "0", 0.0);
  n.addResistor("R1", "in", "out", 1.0);
  n.addDiode("D1", "out", "0", 0.7);
  n.addCapacitor("C1", "out", "0", 0.5);
  TransientSolver solver(n);
  const auto v = solver.stepResponse("Vin", 5.0, "out", 5.0);
  for (double x : v) EXPECT_LE(x, 0.7 + 1e-6);
  EXPECT_NEAR(v.back(), 0.7, 1e-6);
}

TEST(Transient, Validation) {
  TransientOptions bad;
  bad.timeStep = 0.0;
  EXPECT_THROW(TransientSolver(rcCircuit(), bad), std::invalid_argument);
  TransientSolver solver(rcCircuit());
  EXPECT_THROW(solver.setWaveform("R1", [](double) { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(solver.setWaveform("nope", [](double) { return 0.0; }),
               std::out_of_range);
}

TEST(Transient, RiseTimeDegenerateInputs) {
  EXPECT_LT(riseTime({0.0, 1.0}, {0.0}), 0.0);          // size mismatch
  EXPECT_LT(riseTime({}, {}), 0.0);                     // empty
}

TEST(Transient, StepCountAndTimeAxis) {
  TransientOptions opts;
  opts.timeStep = 0.1;
  TransientSolver solver(rcCircuit(), opts);
  const auto r = solver.run(1.0);
  EXPECT_EQ(r.steps(), 11u);  // t = 0 plus 10 steps
  EXPECT_DOUBLE_EQ(r.time.front(), 0.0);
  EXPECT_NEAR(r.time.back(), 1.0, 1e-12);
}

}  // namespace
}  // namespace flames::circuit
