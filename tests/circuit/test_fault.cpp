#include "circuit/fault.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"
#include "circuit/mna.h"

namespace flames::circuit {
namespace {

Netlist divider() {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0);
  n.addResistor("R2", "mid", "0", 1.0);
  return n;
}

TEST(Fault, Describe) {
  EXPECT_EQ(Fault::open("R1").describe(), "R1: open");
  EXPECT_EQ(Fault::shortCircuit("R1").describe(), "R1: short");
  EXPECT_EQ(Fault::paramExact("R1", 2.5).describe(), "R1: param-exact 2.5");
  EXPECT_EQ(Fault::pinOpen("R1", 1).describe(), "R1: pin-open pin 1");
}

TEST(Fault, OpenResistorKillsDividerCurrent) {
  const Netlist faulted = applyFaults(divider(), {Fault::open("R1")});
  const auto op = DcSolver(faulted).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(faulted.findNode("mid")), 0.0, 1e-6);
}

TEST(Fault, ShortResistorPullsNodeToSource) {
  const Netlist faulted = applyFaults(divider(), {Fault::shortCircuit("R1")});
  const auto op = DcSolver(faulted).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(faulted.findNode("mid")), 10.0, 1e-4);
}

TEST(Fault, ParamExactChangesRatio) {
  const Netlist faulted =
      applyFaults(divider(), {Fault::paramExact("R2", 3.0)});
  const auto op = DcSolver(faulted).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(faulted.findNode("mid")), 7.5, 1e-9);
}

TEST(Fault, ParamScaleMultiplies) {
  const Netlist faulted = applyFaults(divider(), {Fault::paramScale("R2", 3.0)});
  const auto op = DcSolver(faulted).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(faulted.findNode("mid")), 7.5, 1e-9);
}

TEST(Fault, PinOpenDisconnectsResistor) {
  const Netlist faulted = applyFaults(divider(), {Fault::pinOpen("R2", 0)});
  const auto op = DcSolver(faulted).solve();
  ASSERT_TRUE(op.converged);
  // R2 detached from mid: divider becomes source -> R1 -> open: mid ~ 10 V.
  EXPECT_NEAR(op.v(faulted.findNode("mid")), 10.0, 1e-3);
}

TEST(Fault, PinOpenOutOfRangeThrows) {
  EXPECT_THROW(applyFaults(divider(), {Fault::pinOpen("R2", 5)}),
               std::invalid_argument);
}

TEST(Fault, OpenTransistorLeavesNoFloatingNodes) {
  Netlist n = paperFig6ThreeStageAmp();
  const Netlist faulted = applyFaults(n, {Fault::open("T2")});
  const auto op = DcSolver(faulted).solve();
  EXPECT_TRUE(op.converged);
}

TEST(Fault, MultipleFaultsCompose) {
  const Netlist faulted = applyFaults(
      divider(), {Fault::paramScale("R1", 2.0), Fault::paramScale("R2", 2.0)});
  const auto op = DcSolver(faulted).solve();
  ASSERT_TRUE(op.converged);
  // Ratio preserved: still 5 V.
  EXPECT_NEAR(op.v(faulted.findNode("mid")), 5.0, 1e-9);
}

TEST(Fault, NominalNetlistUntouched) {
  const Netlist original = divider();
  const Netlist faulted = applyFaults(original, {Fault::open("R1")});
  (void)faulted;
  EXPECT_DOUBLE_EQ(original.component("R1").value, 1.0);
  EXPECT_EQ(original.component("R1").kind, ComponentKind::kResistor);
}

TEST(Fault, Fig7ScenariosAllSolvable) {
  // The five defects of the paper's experimental table must all simulate.
  const Netlist nominal = paperFig6ThreeStageAmp();
  const std::vector<std::vector<Fault>> scenarios = {
      {Fault::shortCircuit("R2")},
      {Fault::paramExact("R2", 12.18)},
      {Fault::paramExact("T2", 194.0)},
      {Fault::open("R3")},
      {Fault::pinOpen("T1", 1)},  // "open circuit in N1" at the base
  };
  for (const auto& faults : scenarios) {
    const Netlist faulted = applyFaults(nominal, faults);
    const auto op = DcSolver(faulted).solve();
    EXPECT_TRUE(op.converged) << faults.front().describe();
  }
}

}  // namespace
}  // namespace flames::circuit
