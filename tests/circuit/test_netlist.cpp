#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"

namespace flames::circuit {
namespace {

TEST(Netlist, GroundAliases) {
  Netlist n;
  EXPECT_EQ(n.node("0"), kGround);
  EXPECT_EQ(n.node("gnd"), kGround);
  EXPECT_EQ(n.node("GND"), kGround);
}

TEST(Netlist, NodeCreationIsIdempotent) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_EQ(n.node("a"), a);
  EXPECT_EQ(n.findNode("a"), a);
  EXPECT_EQ(n.nodeName(a), "a");
  EXPECT_THROW((void)n.findNode("missing"), std::out_of_range);
}

TEST(Netlist, AddResistorWiresPins) {
  Netlist n;
  const Component& r = n.addResistor("R1", "a", "b", 10.0, 0.05);
  EXPECT_EQ(r.kind, ComponentKind::kResistor);
  EXPECT_EQ(r.pins.size(), 2u);
  EXPECT_EQ(r.pins[0], n.findNode("a"));
  EXPECT_EQ(r.pins[1], n.findNode("b"));
  EXPECT_DOUBLE_EQ(r.value, 10.0);
}

TEST(Netlist, DuplicateComponentNameRejected) {
  Netlist n;
  n.addResistor("R1", "a", "0", 1.0);
  EXPECT_THROW(n.addResistor("R1", "b", "0", 2.0), std::invalid_argument);
}

TEST(Netlist, NonPositiveResistanceRejected) {
  Netlist n;
  EXPECT_THROW(n.addResistor("R1", "a", "0", 0.0), std::invalid_argument);
  EXPECT_THROW(n.addResistor("R2", "a", "0", -5.0), std::invalid_argument);
}

TEST(Netlist, ComponentLookup) {
  Netlist n;
  n.addResistor("R1", "a", "0", 1.0);
  EXPECT_TRUE(n.hasComponent("R1"));
  EXPECT_FALSE(n.hasComponent("R2"));
  EXPECT_EQ(n.component("R1").name, "R1");
  EXPECT_THROW((void)n.component("R2"), std::out_of_range);
}

TEST(Netlist, FuzzyValueUsesTolerance) {
  Netlist n;
  const Component& r = n.addResistor("R1", "a", "0", 100.0, 0.05);
  const auto f = r.fuzzyValue();
  EXPECT_DOUBLE_EQ(f.coreMidpoint(), 100.0);
  EXPECT_DOUBLE_EQ(f.alpha(), 5.0);
}

TEST(Netlist, NpnPinOrderAndParams) {
  Netlist n;
  const Component& t = n.addNpn("T1", "c", "b", "e", 300.0, 0.1, 0.7, 0.05);
  EXPECT_EQ(t.pins.size(), 3u);
  EXPECT_EQ(n.nodeName(t.pins[0]), "c");
  EXPECT_EQ(n.nodeName(t.pins[1]), "b");
  EXPECT_EQ(n.nodeName(t.pins[2]), "e");
  EXPECT_DOUBLE_EQ(t.fuzzyVbe().coreMidpoint(), 0.7);
  EXPECT_DOUBLE_EQ(t.fuzzyVbe().alpha(), 0.05);
  EXPECT_THROW(n.addNpn("T2", "c", "b", "e", -1.0), std::invalid_argument);
}

TEST(Netlist, KindNames) {
  EXPECT_EQ(kindName(ComponentKind::kResistor), "resistor");
  EXPECT_EQ(kindName(ComponentKind::kVSource), "vsource");
  EXPECT_EQ(kindName(ComponentKind::kDiode), "diode");
  EXPECT_EQ(kindName(ComponentKind::kGain), "gain");
  EXPECT_EQ(kindName(ComponentKind::kNpn), "npn");
}

TEST(Catalog, Fig2ChainShape) {
  const Netlist n = paperFig2Chain();
  EXPECT_TRUE(n.hasComponent("amp1"));
  EXPECT_TRUE(n.hasComponent("amp2"));
  EXPECT_TRUE(n.hasComponent("amp3"));
  // amp2 and amp3 are both driven from node B (the Fig. 2 arithmetic only
  // reproduces with that topology).
  EXPECT_EQ(n.component("amp2").pins[0], n.findNode("B"));
  EXPECT_EQ(n.component("amp3").pins[0], n.findNode("B"));
}

TEST(Catalog, Fig5DiodeNetworkHasFuzzyRating) {
  const Netlist n = paperFig5DiodeNetwork();
  const Component& d1 = n.component("d1");
  ASSERT_TRUE(d1.maxCurrent.has_value());
  EXPECT_NEAR(d1.maxCurrent->m2(), 0.100, 1e-12);  // 100 uA in mA units
  EXPECT_NEAR(d1.maxCurrent->beta(), 0.010, 1e-12);
}

TEST(Catalog, Fig6InventoryMatchesPaper) {
  const Netlist n = paperFig6ThreeStageAmp();
  EXPECT_DOUBLE_EQ(n.component("R1").value, 200.0);
  EXPECT_DOUBLE_EQ(n.component("R2").value, 12.0);
  EXPECT_DOUBLE_EQ(n.component("R3").value, 24.0);
  EXPECT_DOUBLE_EQ(n.component("R4").value, 3.0);
  EXPECT_DOUBLE_EQ(n.component("R5").value, 2.2);
  EXPECT_DOUBLE_EQ(n.component("R6").value, 1.8);
  EXPECT_DOUBLE_EQ(n.component("T1").value, 300.0);
  EXPECT_DOUBLE_EQ(n.component("T2").value, 200.0);
  EXPECT_DOUBLE_EQ(n.component("T3").value, 100.0);
  EXPECT_DOUBLE_EQ(n.component("Vcc").value, 18.0);
}

}  // namespace
}  // namespace flames::circuit
