// Property-based checks on the AC solver: linear-network identities that
// must hold for any parameter draw (DC limit, reciprocity of magnitude to
// source scaling, monotone rolloff of RC ladders, Kramers-Kronig-style
// sanity of phase signs).
#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "circuit/ac.h"
#include "workload/generators.h"

namespace flames::circuit {
namespace {

class AcPropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  std::mt19937 rng_{GetParam()};

  Netlist randomRcLadder(std::size_t stages) {
    std::uniform_real_distribution<double> ur(0.5, 2.0);
    Netlist n;
    n.addVSource("Vin", "t0", "0", 1.0);
    for (std::size_t i = 1; i <= stages; ++i) {
      n.addResistor("R" + std::to_string(i), "t" + std::to_string(i - 1),
                    "t" + std::to_string(i), ur(rng_));
      n.addCapacitor("C" + std::to_string(i), "t" + std::to_string(i), "0",
                     ur(rng_));
    }
    return n;
  }
};

TEST_P(AcPropertyTest, ZeroFrequencyMatchesDcTransfer) {
  // At w = 0 capacitors vanish and the AC system equals the DC one driven
  // by a unit source: for a ladder with no DC path to ground except the
  // caps, the transfer is exactly 1 at every tap.
  const Netlist n = randomRcLadder(3);
  const AcSolver solver(n);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_NEAR(solver.gainMagnitude(0.0, "Vin", "t" + std::to_string(i)),
                1.0, 1e-9);
  }
}

TEST_P(AcPropertyTest, MagnitudeNonIncreasingAlongLadder) {
  // Passive RC ladder: each extra section can only attenuate.
  const Netlist n = randomRcLadder(4);
  const AcSolver solver(n);
  for (double f : {0.05, 0.2, 1.0, 5.0}) {
    double prev = 1.0 + 1e-12;
    for (int i = 1; i <= 4; ++i) {
      const double g = solver.gainMagnitude(f, "Vin", "t" + std::to_string(i));
      EXPECT_LE(g, prev + 1e-9) << "f=" << f << " stage " << i;
      prev = g;
    }
  }
}

TEST_P(AcPropertyTest, MagnitudeMonotoneInFrequencyForLowpass) {
  const Netlist n = randomRcLadder(2);
  const AcSolver solver(n);
  double prev = 1.0 + 1e-12;
  for (double f = 0.02; f < 30.0; f *= 2.0) {
    const double g = solver.gainMagnitude(f, "Vin", "t2");
    EXPECT_LE(g, prev + 1e-9) << "f=" << f;
    prev = g;
  }
}

TEST_P(AcPropertyTest, PhaseLagNegativeForLowpass) {
  const Netlist n = randomRcLadder(2);
  const AcSolver solver(n);
  for (double f : {0.1, 0.5, 2.0}) {
    const auto p = solver.solve(2.0 * std::numbers::pi * f, "Vin");
    EXPECT_LT(p.phaseDegrees(n.findNode("t2")), 0.0) << "f=" << f;
  }
}

TEST_P(AcPropertyTest, PassivityMagnitudeBounded) {
  // A passive RC network driven by a unit source can exceed 1 nowhere.
  const Netlist n = randomRcLadder(3);
  const AcSolver solver(n);
  for (double f : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    for (int i = 1; i <= 3; ++i) {
      EXPECT_LE(solver.gainMagnitude(f, "Vin", "t" + std::to_string(i)),
                1.0 + 1e-9);
    }
  }
}

TEST_P(AcPropertyTest, RcProductInvariance) {
  // Scaling every R by k and every C by 1/k leaves all corner frequencies
  // (hence every |H|) unchanged.
  Netlist a = randomRcLadder(2);
  Netlist b = a;
  const double k = 3.0;
  for (auto& c : b.components()) {
    if (c.kind == ComponentKind::kResistor) c.value *= k;
    if (c.kind == ComponentKind::kCapacitor) c.value /= k;
  }
  const AcSolver sa(a), sb(b);
  for (double f : {0.05, 0.3, 2.0, 9.0}) {
    EXPECT_NEAR(sa.gainMagnitude(f, "Vin", "t2"),
                sb.gainMagnitude(f, "Vin", "t2"), 1e-9)
        << "f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcPropertyTest,
                         ::testing::Values(1u, 7u, 13u, 42u, 99u));

}  // namespace
}  // namespace flames::circuit
