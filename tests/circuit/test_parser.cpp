#include "circuit/parser.h"

#include <gtest/gtest.h>

#include "circuit/mna.h"

namespace flames::circuit {
namespace {

TEST(EngineeringValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parseEngineeringValue("12"), 12.0);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("1e3"), 1000.0);
}

TEST(EngineeringValue, Suffixes) {
  EXPECT_DOUBLE_EQ(parseEngineeringValue("12k"), 12000.0);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("4.7u"), 4.7e-6);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("10n"), 1e-8);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("1M"), 1e6);  // datasheet mega
  EXPECT_DOUBLE_EQ(parseEngineeringValue("2G"), 2e9);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("2K"), 2000.0);
}

TEST(EngineeringValue, Garbage) {
  EXPECT_THROW((void)parseEngineeringValue(""), std::invalid_argument);
  EXPECT_THROW((void)parseEngineeringValue("abc"), std::invalid_argument);
  EXPECT_THROW((void)parseEngineeringValue("1x"), std::invalid_argument);
}

TEST(Parser, DividerRoundTrip) {
  const auto net = parseNetlistString(R"(
* simple divider
V1 in 0 10
R1 in mid 1 tol=5%
R2 mid 0 1 tol=0.05
)");
  EXPECT_EQ(net.components().size(), 3u);
  EXPECT_DOUBLE_EQ(net.component("R1").value, 1.0);
  EXPECT_DOUBLE_EQ(net.component("R1").relTol, 0.05);
  EXPECT_DOUBLE_EQ(net.component("R2").relTol, 0.05);
  const auto op = DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(net.findNode("mid")), 5.0, 1e-9);
}

TEST(Parser, CommentsAndBlanksIgnored) {
  const auto net = parseNetlistString(
      "\n* leading comment\nV1 a 0 1 ; trailing comment\n  \nR1 a 0 1\n");
  EXPECT_EQ(net.components().size(), 2u);
}

TEST(Parser, DotEndStopsParsing) {
  const auto net = parseNetlistString("V1 a 0 1\n.end\nR1 a 0 1\n");
  EXPECT_EQ(net.components().size(), 1u);
}

TEST(Parser, UnknownDirectiveThrows) {
  EXPECT_THROW(parseNetlistString(".include foo\n"), ParseError);
}

TEST(Parser, TransistorCard) {
  const auto net = parseNetlistString(
      "Q1 c b e 300 tol=2% vbe=0.65 vbespread=0.02\n");
  const Component& q = net.component("Q1");
  EXPECT_EQ(q.kind, ComponentKind::kNpn);
  EXPECT_DOUBLE_EQ(q.value, 300.0);
  EXPECT_DOUBLE_EQ(q.relTol, 0.02);
  EXPECT_DOUBLE_EQ(q.vbe, 0.65);
  EXPECT_DOUBLE_EQ(q.vbeSpread, 0.02);
}

TEST(Parser, DiodeWithFuzzyRating) {
  const auto net =
      parseNetlistString("D1 a k 0.2 imax=[-0.001,0.1,0,0.01]\n");
  const Component& d = net.component("D1");
  ASSERT_TRUE(d.maxCurrent.has_value());
  EXPECT_NEAR(d.maxCurrent->m2(), 0.1, 1e-12);
  EXPECT_NEAR(d.maxCurrent->beta(), 0.01, 1e-12);
}

TEST(Parser, ReactiveAndGainCards) {
  const auto net = parseNetlistString(
      "V1 in 0 1\nC1 in mid 1u tol=5%\nL1 mid out 2m\nA1 out buf 2.5\n");
  EXPECT_EQ(net.component("C1").kind, ComponentKind::kCapacitor);
  EXPECT_DOUBLE_EQ(net.component("C1").value, 1e-6);
  EXPECT_EQ(net.component("L1").kind, ComponentKind::kInductor);
  EXPECT_DOUBLE_EQ(net.component("L1").value, 2e-3);
  EXPECT_EQ(net.component("A1").kind, ComponentKind::kGain);
  EXPECT_DOUBLE_EQ(net.component("A1").value, 2.5);
}

TEST(Parser, CaseInsensitiveKindLetter) {
  const auto net = parseNetlistString("v1 a 0 1\nr1 a 0 2\n");
  EXPECT_EQ(net.component("v1").kind, ComponentKind::kVSource);
  EXPECT_EQ(net.component("r1").kind, ComponentKind::kResistor);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parseNetlistString("V1 a 0 1\nR1 a 0\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, ErrorsCarryTheRawCard) {
  try {
    (void)parseNetlistString("V1 a 0 1\nR1 a 0 zzz tol=1%\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.card(), "R1 a 0 zzz tol=1%");
    EXPECT_FALSE(e.message().empty());
    // what() stays self-contained for callers that only log the exception.
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos);
    EXPECT_NE(what.find("card: R1 a 0 zzz tol=1%"), std::string::npos);
  }
}

TEST(Parser, DirectiveErrorsCarryTheRawCard) {
  try {
    (void)parseNetlistString(".include foo\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.card(), ".include foo");
  }
}

TEST(Parser, UnknownKindRejected) {
  EXPECT_THROW(parseNetlistString("X1 a b 1\n"), ParseError);
}

TEST(Parser, BadOptionRejected) {
  EXPECT_THROW(parseNetlistString("R1 a 0 1 frob=2\n"), ParseError);
  EXPECT_THROW(parseNetlistString("R1 a 0 1 extra\n"), ParseError);
}

TEST(Parser, BadValueRejected) {
  EXPECT_THROW(parseNetlistString("R1 a 0 zzz\n"), ParseError);
  EXPECT_THROW(parseNetlistString("R1 a 0 -1\n"), ParseError);  // <= 0 ohms
}

TEST(Parser, BadFuzzyLiteralRejected) {
  EXPECT_THROW(parseNetlistString("D1 a k 0.2 imax=[1,2,3]\n"), ParseError);
  EXPECT_THROW(parseNetlistString("D1 a k 0.2 imax=1,2,3,4\n"), ParseError);
  EXPECT_THROW(parseNetlistString("D1 a k 0.2 imax=[2,1,0,0]\n"), ParseError);
}

TEST(Parser, DuplicateNameRejected) {
  EXPECT_THROW(parseNetlistString("R1 a 0 1\nR1 b 0 1\n"), ParseError);
}

TEST(Parser, Fig6NetlistParsesAndSolves) {
  const auto net = parseNetlistString(R"(
* paper Fig. 6 reconstruction, V / kOhm / mA units
Vcc vcc 0 18
R2 vcc V1 12 tol=1%
R1 V1 N1 200 tol=1%
R3 N1 0 24 tol=1%
Q1 V1 N1 0 300 tol=2% vbe=0.7 vbespread=0.01
R5 vcc V2 2.2 tol=1%
R4 E2 0 3 tol=1%
Q2 V2 V1 E2 200 tol=2% vbe=0.7 vbespread=0.01
R6 Vs 0 1.8 tol=1%
Q3 vcc V2 Vs 100 tol=2% vbe=0.7 vbespread=0.01
.end
)");
  const auto op = DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(net.findNode("V1")), 7.11, 0.05);
  EXPECT_FALSE(op.saturationWarning);
}

TEST(Writer, RoundTripPreservesEverything) {
  const auto original = parseNetlistString(R"(
Vcc vcc 0 18
R2 vcc V1 12 tol=1%
Q1 V1 N1 0 300 tol=2% vbe=0.7 vbespread=0.01
D1 in n1 0.2 imax=[-0.001,0.1,0,0.01]
C1 out 0 1u tol=5%
L1 a b 2m
A1 out buf 2.5 tol=2%
R3 a 0 1
)");
  const std::string text = writeNetlistString(original);
  const auto restored = parseNetlistString(text);

  ASSERT_EQ(restored.components().size(), original.components().size());
  for (const auto& c : original.components()) {
    const auto& r = restored.component(c.name);
    EXPECT_EQ(r.kind, c.kind) << c.name;
    EXPECT_DOUBLE_EQ(r.value, c.value) << c.name;
    EXPECT_DOUBLE_EQ(r.relTol, c.relTol) << c.name;
    ASSERT_EQ(r.pins.size(), c.pins.size());
    for (std::size_t i = 0; i < c.pins.size(); ++i) {
      EXPECT_EQ(restored.nodeName(r.pins[i]), original.nodeName(c.pins[i]));
    }
    if (c.kind == ComponentKind::kNpn) {
      EXPECT_DOUBLE_EQ(r.vbe, c.vbe);
      EXPECT_DOUBLE_EQ(r.vbeSpread, c.vbeSpread);
    }
    EXPECT_EQ(r.maxCurrent.has_value(), c.maxCurrent.has_value());
    if (c.maxCurrent) {
      EXPECT_TRUE(r.maxCurrent->approxEquals(*c.maxCurrent, 1e-12));
    }
  }
}

TEST(Writer, PrependsKindLetterWhenMissing) {
  // A programmatically built component whose name lacks the kind letter
  // still round-trips (under the adjusted name).
  Netlist n;
  n.addResistor("loadRes", "a", "0", 2.0);
  const auto restored = parseNetlistString(writeNetlistString(n));
  EXPECT_TRUE(restored.hasComponent("RloadRes"));
  EXPECT_DOUBLE_EQ(restored.component("RloadRes").value, 2.0);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(parseNetlistFile("/nonexistent/x.cir"), std::runtime_error);
}

}  // namespace
}  // namespace flames::circuit
