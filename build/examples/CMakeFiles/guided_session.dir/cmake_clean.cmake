file(REMOVE_RECURSE
  "CMakeFiles/guided_session.dir/guided_session.cpp.o"
  "CMakeFiles/guided_session.dir/guided_session.cpp.o.d"
  "guided_session"
  "guided_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guided_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
