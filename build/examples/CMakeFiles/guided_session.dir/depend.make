# Empty dependencies file for guided_session.
# This may be replaced when dependencies are built.
