file(REMOVE_RECURSE
  "CMakeFiles/diode_network.dir/diode_network.cpp.o"
  "CMakeFiles/diode_network.dir/diode_network.cpp.o.d"
  "diode_network"
  "diode_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diode_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
