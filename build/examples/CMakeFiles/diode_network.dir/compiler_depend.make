# Empty compiler generated dependencies file for diode_network.
# This may be replaced when dependencies are built.
