# Empty compiler generated dependencies file for three_stage_amp.
# This may be replaced when dependencies are built.
