file(REMOVE_RECURSE
  "CMakeFiles/three_stage_amp.dir/three_stage_amp.cpp.o"
  "CMakeFiles/three_stage_amp.dir/three_stage_amp.cpp.o.d"
  "three_stage_amp"
  "three_stage_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_stage_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
