file(REMOVE_RECURSE
  "CMakeFiles/step_response.dir/step_response.cpp.o"
  "CMakeFiles/step_response.dir/step_response.cpp.o.d"
  "step_response"
  "step_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/step_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
