# Empty dependencies file for step_response.
# This may be replaced when dependencies are built.
