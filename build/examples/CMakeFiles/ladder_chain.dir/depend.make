# Empty dependencies file for ladder_chain.
# This may be replaced when dependencies are built.
