file(REMOVE_RECURSE
  "CMakeFiles/ladder_chain.dir/ladder_chain.cpp.o"
  "CMakeFiles/ladder_chain.dir/ladder_chain.cpp.o.d"
  "ladder_chain"
  "ladder_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
