file(REMOVE_RECURSE
  "CMakeFiles/flames_cli.dir/flames_cli.cpp.o"
  "CMakeFiles/flames_cli.dir/flames_cli.cpp.o.d"
  "flames_cli"
  "flames_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
