# Empty compiler generated dependencies file for flames_cli.
# This may be replaced when dependencies are built.
