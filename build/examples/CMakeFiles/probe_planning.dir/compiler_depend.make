# Empty compiler generated dependencies file for probe_planning.
# This may be replaced when dependencies are built.
