file(REMOVE_RECURSE
  "CMakeFiles/probe_planning.dir/probe_planning.cpp.o"
  "CMakeFiles/probe_planning.dir/probe_planning.cpp.o.d"
  "probe_planning"
  "probe_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
