# Empty compiler generated dependencies file for dynamic_mode.
# This may be replaced when dependencies are built.
