file(REMOVE_RECURSE
  "CMakeFiles/dynamic_mode.dir/dynamic_mode.cpp.o"
  "CMakeFiles/dynamic_mode.dir/dynamic_mode.cpp.o.d"
  "dynamic_mode"
  "dynamic_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
