# Empty dependencies file for test_transient_diagnosis.
# This may be replaced when dependencies are built.
