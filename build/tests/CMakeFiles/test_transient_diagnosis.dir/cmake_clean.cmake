file(REMOVE_RECURSE
  "CMakeFiles/test_transient_diagnosis.dir/diagnosis/test_transient_diagnosis.cpp.o"
  "CMakeFiles/test_transient_diagnosis.dir/diagnosis/test_transient_diagnosis.cpp.o.d"
  "test_transient_diagnosis"
  "test_transient_diagnosis.pdb"
  "test_transient_diagnosis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
