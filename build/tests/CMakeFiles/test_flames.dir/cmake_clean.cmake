file(REMOVE_RECURSE
  "CMakeFiles/test_flames.dir/diagnosis/test_flames.cpp.o"
  "CMakeFiles/test_flames.dir/diagnosis/test_flames.cpp.o.d"
  "test_flames"
  "test_flames.pdb"
  "test_flames[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
