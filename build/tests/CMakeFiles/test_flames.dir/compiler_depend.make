# Empty compiler generated dependencies file for test_flames.
# This may be replaced when dependencies are built.
