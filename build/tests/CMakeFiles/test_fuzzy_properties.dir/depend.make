# Empty dependencies file for test_fuzzy_properties.
# This may be replaced when dependencies are built.
