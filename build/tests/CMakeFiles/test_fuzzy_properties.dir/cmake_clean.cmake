file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzy_properties.dir/fuzzy/test_fuzzy_properties.cpp.o"
  "CMakeFiles/test_fuzzy_properties.dir/fuzzy/test_fuzzy_properties.cpp.o.d"
  "test_fuzzy_properties"
  "test_fuzzy_properties.pdb"
  "test_fuzzy_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzy_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
