# Empty dependencies file for test_propagator_options.
# This may be replaced when dependencies are built.
