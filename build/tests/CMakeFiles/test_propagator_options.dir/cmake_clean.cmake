file(REMOVE_RECURSE
  "CMakeFiles/test_propagator_options.dir/constraints/test_propagator_options.cpp.o"
  "CMakeFiles/test_propagator_options.dir/constraints/test_propagator_options.cpp.o.d"
  "test_propagator_options"
  "test_propagator_options.pdb"
  "test_propagator_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propagator_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
