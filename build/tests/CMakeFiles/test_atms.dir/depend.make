# Empty dependencies file for test_atms.
# This may be replaced when dependencies are built.
