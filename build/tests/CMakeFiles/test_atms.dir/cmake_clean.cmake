file(REMOVE_RECURSE
  "CMakeFiles/test_atms.dir/atms/test_atms.cpp.o"
  "CMakeFiles/test_atms.dir/atms/test_atms.cpp.o.d"
  "test_atms"
  "test_atms.pdb"
  "test_atms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
