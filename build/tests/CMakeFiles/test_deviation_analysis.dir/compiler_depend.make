# Empty compiler generated dependencies file for test_deviation_analysis.
# This may be replaced when dependencies are built.
