file(REMOVE_RECURSE
  "CMakeFiles/test_deviation_analysis.dir/diagnosis/test_deviation_analysis.cpp.o"
  "CMakeFiles/test_deviation_analysis.dir/diagnosis/test_deviation_analysis.cpp.o.d"
  "test_deviation_analysis"
  "test_deviation_analysis.pdb"
  "test_deviation_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deviation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
