# Empty compiler generated dependencies file for test_tnorm.
# This may be replaced when dependencies are built.
