file(REMOVE_RECURSE
  "CMakeFiles/test_tnorm.dir/fuzzy/test_tnorm.cpp.o"
  "CMakeFiles/test_tnorm.dir/fuzzy/test_tnorm.cpp.o.d"
  "test_tnorm"
  "test_tnorm.pdb"
  "test_tnorm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tnorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
