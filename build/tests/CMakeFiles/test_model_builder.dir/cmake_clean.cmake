file(REMOVE_RECURSE
  "CMakeFiles/test_model_builder.dir/constraints/test_model_builder.cpp.o"
  "CMakeFiles/test_model_builder.dir/constraints/test_model_builder.cpp.o.d"
  "test_model_builder"
  "test_model_builder.pdb"
  "test_model_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
