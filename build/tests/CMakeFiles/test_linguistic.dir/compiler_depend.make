# Empty compiler generated dependencies file for test_linguistic.
# This may be replaced when dependencies are built.
