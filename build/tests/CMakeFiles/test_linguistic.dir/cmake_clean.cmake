file(REMOVE_RECURSE
  "CMakeFiles/test_linguistic.dir/fuzzy/test_linguistic.cpp.o"
  "CMakeFiles/test_linguistic.dir/fuzzy/test_linguistic.cpp.o.d"
  "test_linguistic"
  "test_linguistic.pdb"
  "test_linguistic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linguistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
