file(REMOVE_RECURSE
  "CMakeFiles/test_piecewise_linear.dir/fuzzy/test_piecewise_linear.cpp.o"
  "CMakeFiles/test_piecewise_linear.dir/fuzzy/test_piecewise_linear.cpp.o.d"
  "test_piecewise_linear"
  "test_piecewise_linear.pdb"
  "test_piecewise_linear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piecewise_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
