# Empty compiler generated dependencies file for test_piecewise_linear.
# This may be replaced when dependencies are built.
