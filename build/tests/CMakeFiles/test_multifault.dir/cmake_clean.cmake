file(REMOVE_RECURSE
  "CMakeFiles/test_multifault.dir/integration/test_multifault.cpp.o"
  "CMakeFiles/test_multifault.dir/integration/test_multifault.cpp.o.d"
  "test_multifault"
  "test_multifault.pdb"
  "test_multifault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multifault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
