file(REMOVE_RECURSE
  "CMakeFiles/test_crisp_baseline.dir/baselines/test_crisp_baseline.cpp.o"
  "CMakeFiles/test_crisp_baseline.dir/baselines/test_crisp_baseline.cpp.o.d"
  "test_crisp_baseline"
  "test_crisp_baseline.pdb"
  "test_crisp_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crisp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
