# Empty dependencies file for test_crisp_baseline.
# This may be replaced when dependencies are built.
