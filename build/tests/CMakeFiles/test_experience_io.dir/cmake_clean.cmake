file(REMOVE_RECURSE
  "CMakeFiles/test_experience_io.dir/diagnosis/test_experience_io.cpp.o"
  "CMakeFiles/test_experience_io.dir/diagnosis/test_experience_io.cpp.o.d"
  "test_experience_io"
  "test_experience_io.pdb"
  "test_experience_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experience_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
