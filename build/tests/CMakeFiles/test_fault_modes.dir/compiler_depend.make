# Empty compiler generated dependencies file for test_fault_modes.
# This may be replaced when dependencies are built.
