file(REMOVE_RECURSE
  "CMakeFiles/test_fault_modes.dir/diagnosis/test_fault_modes.cpp.o"
  "CMakeFiles/test_fault_modes.dir/diagnosis/test_fault_modes.cpp.o.d"
  "test_fault_modes"
  "test_fault_modes.pdb"
  "test_fault_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
