
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/constraints/test_propagator.cpp" "tests/CMakeFiles/test_propagator.dir/constraints/test_propagator.cpp.o" "gcc" "tests/CMakeFiles/test_propagator.dir/constraints/test_propagator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flames_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_atms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
