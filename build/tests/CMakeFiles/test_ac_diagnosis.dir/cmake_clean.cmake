file(REMOVE_RECURSE
  "CMakeFiles/test_ac_diagnosis.dir/diagnosis/test_ac_diagnosis.cpp.o"
  "CMakeFiles/test_ac_diagnosis.dir/diagnosis/test_ac_diagnosis.cpp.o.d"
  "test_ac_diagnosis"
  "test_ac_diagnosis.pdb"
  "test_ac_diagnosis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ac_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
