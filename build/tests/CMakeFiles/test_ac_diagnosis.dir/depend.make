# Empty dependencies file for test_ac_diagnosis.
# This may be replaced when dependencies are built.
