file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzy_interval.dir/fuzzy/test_fuzzy_interval.cpp.o"
  "CMakeFiles/test_fuzzy_interval.dir/fuzzy/test_fuzzy_interval.cpp.o.d"
  "test_fuzzy_interval"
  "test_fuzzy_interval.pdb"
  "test_fuzzy_interval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzy_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
