# Empty dependencies file for test_fuzzy_interval.
# This may be replaced when dependencies are built.
