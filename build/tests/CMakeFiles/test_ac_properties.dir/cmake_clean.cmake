file(REMOVE_RECURSE
  "CMakeFiles/test_ac_properties.dir/circuit/test_ac_properties.cpp.o"
  "CMakeFiles/test_ac_properties.dir/circuit/test_ac_properties.cpp.o.d"
  "test_ac_properties"
  "test_ac_properties.pdb"
  "test_ac_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ac_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
