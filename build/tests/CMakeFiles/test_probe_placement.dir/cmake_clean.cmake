file(REMOVE_RECURSE
  "CMakeFiles/test_probe_placement.dir/diagnosis/test_probe_placement.cpp.o"
  "CMakeFiles/test_probe_placement.dir/diagnosis/test_probe_placement.cpp.o.d"
  "test_probe_placement"
  "test_probe_placement.pdb"
  "test_probe_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
