# Empty compiler generated dependencies file for test_probe_placement.
# This may be replaced when dependencies are built.
