# Empty dependencies file for test_knowledge_base.
# This may be replaced when dependencies are built.
