file(REMOVE_RECURSE
  "CMakeFiles/test_knowledge_base.dir/diagnosis/test_knowledge_base.cpp.o"
  "CMakeFiles/test_knowledge_base.dir/diagnosis/test_knowledge_base.cpp.o.d"
  "test_knowledge_base"
  "test_knowledge_base.pdb"
  "test_knowledge_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knowledge_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
