# Empty compiler generated dependencies file for flames_workload.
# This may be replaced when dependencies are built.
