file(REMOVE_RECURSE
  "CMakeFiles/flames_workload.dir/workload/generators.cpp.o"
  "CMakeFiles/flames_workload.dir/workload/generators.cpp.o.d"
  "CMakeFiles/flames_workload.dir/workload/scenarios.cpp.o"
  "CMakeFiles/flames_workload.dir/workload/scenarios.cpp.o.d"
  "libflames_workload.a"
  "libflames_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
