file(REMOVE_RECURSE
  "libflames_workload.a"
)
