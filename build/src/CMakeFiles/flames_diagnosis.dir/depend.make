# Empty dependencies file for flames_diagnosis.
# This may be replaced when dependencies are built.
