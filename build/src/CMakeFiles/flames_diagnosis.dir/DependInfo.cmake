
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnosis/ac_diagnosis.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/ac_diagnosis.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/ac_diagnosis.cpp.o.d"
  "/root/repo/src/diagnosis/deviation_analysis.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/deviation_analysis.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/deviation_analysis.cpp.o.d"
  "/root/repo/src/diagnosis/experience_io.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/experience_io.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/experience_io.cpp.o.d"
  "/root/repo/src/diagnosis/fault_modes.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/fault_modes.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/fault_modes.cpp.o.d"
  "/root/repo/src/diagnosis/flames.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/flames.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/flames.cpp.o.d"
  "/root/repo/src/diagnosis/knowledge_base.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/knowledge_base.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/knowledge_base.cpp.o.d"
  "/root/repo/src/diagnosis/learning.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/learning.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/learning.cpp.o.d"
  "/root/repo/src/diagnosis/probe_placement.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/probe_placement.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/probe_placement.cpp.o.d"
  "/root/repo/src/diagnosis/report.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/report.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/report.cpp.o.d"
  "/root/repo/src/diagnosis/session.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/session.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/session.cpp.o.d"
  "/root/repo/src/diagnosis/test_selection.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/test_selection.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/test_selection.cpp.o.d"
  "/root/repo/src/diagnosis/transient_diagnosis.cpp" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/transient_diagnosis.cpp.o" "gcc" "src/CMakeFiles/flames_diagnosis.dir/diagnosis/transient_diagnosis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flames_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_atms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
