file(REMOVE_RECURSE
  "libflames_diagnosis.a"
)
