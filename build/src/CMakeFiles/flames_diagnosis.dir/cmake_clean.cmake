file(REMOVE_RECURSE
  "CMakeFiles/flames_diagnosis.dir/diagnosis/ac_diagnosis.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/ac_diagnosis.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/deviation_analysis.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/deviation_analysis.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/experience_io.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/experience_io.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/fault_modes.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/fault_modes.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/flames.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/flames.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/knowledge_base.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/knowledge_base.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/learning.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/learning.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/probe_placement.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/probe_placement.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/report.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/report.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/session.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/session.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/test_selection.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/test_selection.cpp.o.d"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/transient_diagnosis.cpp.o"
  "CMakeFiles/flames_diagnosis.dir/diagnosis/transient_diagnosis.cpp.o.d"
  "libflames_diagnosis.a"
  "libflames_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
