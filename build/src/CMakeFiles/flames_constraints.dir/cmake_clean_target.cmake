file(REMOVE_RECURSE
  "libflames_constraints.a"
)
