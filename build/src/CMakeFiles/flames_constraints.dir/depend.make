# Empty dependencies file for flames_constraints.
# This may be replaced when dependencies are built.
