file(REMOVE_RECURSE
  "CMakeFiles/flames_constraints.dir/constraints/constraint.cpp.o"
  "CMakeFiles/flames_constraints.dir/constraints/constraint.cpp.o.d"
  "CMakeFiles/flames_constraints.dir/constraints/model_builder.cpp.o"
  "CMakeFiles/flames_constraints.dir/constraints/model_builder.cpp.o.d"
  "CMakeFiles/flames_constraints.dir/constraints/propagator.cpp.o"
  "CMakeFiles/flames_constraints.dir/constraints/propagator.cpp.o.d"
  "CMakeFiles/flames_constraints.dir/constraints/quantity.cpp.o"
  "CMakeFiles/flames_constraints.dir/constraints/quantity.cpp.o.d"
  "libflames_constraints.a"
  "libflames_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
