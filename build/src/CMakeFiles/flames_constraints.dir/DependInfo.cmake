
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraint.cpp" "src/CMakeFiles/flames_constraints.dir/constraints/constraint.cpp.o" "gcc" "src/CMakeFiles/flames_constraints.dir/constraints/constraint.cpp.o.d"
  "/root/repo/src/constraints/model_builder.cpp" "src/CMakeFiles/flames_constraints.dir/constraints/model_builder.cpp.o" "gcc" "src/CMakeFiles/flames_constraints.dir/constraints/model_builder.cpp.o.d"
  "/root/repo/src/constraints/propagator.cpp" "src/CMakeFiles/flames_constraints.dir/constraints/propagator.cpp.o" "gcc" "src/CMakeFiles/flames_constraints.dir/constraints/propagator.cpp.o.d"
  "/root/repo/src/constraints/quantity.cpp" "src/CMakeFiles/flames_constraints.dir/constraints/quantity.cpp.o" "gcc" "src/CMakeFiles/flames_constraints.dir/constraints/quantity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flames_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_atms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
