file(REMOVE_RECURSE
  "CMakeFiles/flames_circuit.dir/circuit/ac.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/ac.cpp.o.d"
  "CMakeFiles/flames_circuit.dir/circuit/catalog.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/catalog.cpp.o.d"
  "CMakeFiles/flames_circuit.dir/circuit/fault.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/fault.cpp.o.d"
  "CMakeFiles/flames_circuit.dir/circuit/mna.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/mna.cpp.o.d"
  "CMakeFiles/flames_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/flames_circuit.dir/circuit/parser.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/parser.cpp.o.d"
  "CMakeFiles/flames_circuit.dir/circuit/transient.cpp.o"
  "CMakeFiles/flames_circuit.dir/circuit/transient.cpp.o.d"
  "libflames_circuit.a"
  "libflames_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
