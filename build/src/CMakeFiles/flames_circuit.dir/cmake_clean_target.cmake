file(REMOVE_RECURSE
  "libflames_circuit.a"
)
