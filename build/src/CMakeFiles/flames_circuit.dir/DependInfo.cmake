
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/ac.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/ac.cpp.o.d"
  "/root/repo/src/circuit/catalog.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/catalog.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/catalog.cpp.o.d"
  "/root/repo/src/circuit/fault.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/fault.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/fault.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/parser.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/parser.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/flames_circuit.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/flames_circuit.dir/circuit/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flames_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flames_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
