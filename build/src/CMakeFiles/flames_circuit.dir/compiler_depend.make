# Empty compiler generated dependencies file for flames_circuit.
# This may be replaced when dependencies are built.
