file(REMOVE_RECURSE
  "libflames_baselines.a"
)
