# Empty dependencies file for flames_baselines.
# This may be replaced when dependencies are built.
