file(REMOVE_RECURSE
  "CMakeFiles/flames_baselines.dir/baselines/crisp_diagnosis.cpp.o"
  "CMakeFiles/flames_baselines.dir/baselines/crisp_diagnosis.cpp.o.d"
  "libflames_baselines.a"
  "libflames_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
