file(REMOVE_RECURSE
  "CMakeFiles/flames_fuzzy.dir/fuzzy/consistency.cpp.o"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/consistency.cpp.o.d"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/entropy.cpp.o"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/entropy.cpp.o.d"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/fuzzy_interval.cpp.o"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/fuzzy_interval.cpp.o.d"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/linguistic.cpp.o"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/linguistic.cpp.o.d"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/piecewise_linear.cpp.o"
  "CMakeFiles/flames_fuzzy.dir/fuzzy/piecewise_linear.cpp.o.d"
  "libflames_fuzzy.a"
  "libflames_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
