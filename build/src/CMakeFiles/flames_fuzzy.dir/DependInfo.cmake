
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzzy/consistency.cpp" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/consistency.cpp.o" "gcc" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/consistency.cpp.o.d"
  "/root/repo/src/fuzzy/entropy.cpp" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/entropy.cpp.o" "gcc" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/entropy.cpp.o.d"
  "/root/repo/src/fuzzy/fuzzy_interval.cpp" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/fuzzy_interval.cpp.o" "gcc" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/fuzzy_interval.cpp.o.d"
  "/root/repo/src/fuzzy/linguistic.cpp" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/linguistic.cpp.o" "gcc" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/linguistic.cpp.o.d"
  "/root/repo/src/fuzzy/piecewise_linear.cpp" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/piecewise_linear.cpp.o" "gcc" "src/CMakeFiles/flames_fuzzy.dir/fuzzy/piecewise_linear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
