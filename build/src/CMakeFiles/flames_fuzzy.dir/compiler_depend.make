# Empty compiler generated dependencies file for flames_fuzzy.
# This may be replaced when dependencies are built.
