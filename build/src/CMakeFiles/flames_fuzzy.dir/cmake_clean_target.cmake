file(REMOVE_RECURSE
  "libflames_fuzzy.a"
)
