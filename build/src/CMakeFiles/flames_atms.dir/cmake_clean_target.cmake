file(REMOVE_RECURSE
  "libflames_atms.a"
)
