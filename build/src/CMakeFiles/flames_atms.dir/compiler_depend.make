# Empty compiler generated dependencies file for flames_atms.
# This may be replaced when dependencies are built.
