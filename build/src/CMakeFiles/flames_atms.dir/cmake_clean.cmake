file(REMOVE_RECURSE
  "CMakeFiles/flames_atms.dir/atms/atms.cpp.o"
  "CMakeFiles/flames_atms.dir/atms/atms.cpp.o.d"
  "CMakeFiles/flames_atms.dir/atms/candidates.cpp.o"
  "CMakeFiles/flames_atms.dir/atms/candidates.cpp.o.d"
  "CMakeFiles/flames_atms.dir/atms/environment.cpp.o"
  "CMakeFiles/flames_atms.dir/atms/environment.cpp.o.d"
  "libflames_atms.a"
  "libflames_atms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_atms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
