# Empty dependencies file for flames_linalg.
# This may be replaced when dependencies are built.
