file(REMOVE_RECURSE
  "CMakeFiles/flames_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/flames_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/flames_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/flames_linalg.dir/linalg/matrix.cpp.o.d"
  "libflames_linalg.a"
  "libflames_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flames_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
