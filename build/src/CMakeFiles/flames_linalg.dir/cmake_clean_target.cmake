file(REMOVE_RECURSE
  "libflames_linalg.a"
)
