file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzzy_arith.dir/bench_fuzzy_arith.cpp.o"
  "CMakeFiles/bench_fuzzy_arith.dir/bench_fuzzy_arith.cpp.o.d"
  "bench_fuzzy_arith"
  "bench_fuzzy_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzzy_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
