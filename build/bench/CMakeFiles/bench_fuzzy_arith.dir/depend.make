# Empty dependencies file for bench_fuzzy_arith.
# This may be replaced when dependencies are built.
