file(REMOVE_RECURSE
  "CMakeFiles/bench_propagation_cost.dir/bench_propagation_cost.cpp.o"
  "CMakeFiles/bench_propagation_cost.dir/bench_propagation_cost.cpp.o.d"
  "bench_propagation_cost"
  "bench_propagation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_propagation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
