# Empty dependencies file for bench_propagation_cost.
# This may be replaced when dependencies are built.
