# Empty dependencies file for bench_fig7_diagnosis.
# This may be replaced when dependencies are built.
