# Empty compiler generated dependencies file for bench_test_selection.
# This may be replaced when dependencies are built.
