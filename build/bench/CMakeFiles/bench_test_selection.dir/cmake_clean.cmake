file(REMOVE_RECURSE
  "CMakeFiles/bench_test_selection.dir/bench_test_selection.cpp.o"
  "CMakeFiles/bench_test_selection.dir/bench_test_selection.cpp.o.d"
  "bench_test_selection"
  "bench_test_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
