# Empty dependencies file for bench_fig2_propagation.
# This may be replaced when dependencies are built.
