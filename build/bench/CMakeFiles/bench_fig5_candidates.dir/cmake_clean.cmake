file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_candidates.dir/bench_fig5_candidates.cpp.o"
  "CMakeFiles/bench_fig5_candidates.dir/bench_fig5_candidates.cpp.o.d"
  "bench_fig5_candidates"
  "bench_fig5_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
