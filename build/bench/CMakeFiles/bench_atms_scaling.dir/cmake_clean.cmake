file(REMOVE_RECURSE
  "CMakeFiles/bench_atms_scaling.dir/bench_atms_scaling.cpp.o"
  "CMakeFiles/bench_atms_scaling.dir/bench_atms_scaling.cpp.o.d"
  "bench_atms_scaling"
  "bench_atms_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atms_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
