# Empty compiler generated dependencies file for bench_atms_scaling.
# This may be replaced when dependencies are built.
