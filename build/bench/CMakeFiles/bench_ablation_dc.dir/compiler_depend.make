# Empty compiler generated dependencies file for bench_ablation_dc.
# This may be replaced when dependencies are built.
