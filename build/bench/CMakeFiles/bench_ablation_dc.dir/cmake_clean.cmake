file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dc.dir/bench_ablation_dc.cpp.o"
  "CMakeFiles/bench_ablation_dc.dir/bench_ablation_dc.cpp.o.d"
  "bench_ablation_dc"
  "bench_ablation_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
