# Empty dependencies file for bench_ac_diagnosis.
# This may be replaced when dependencies are built.
