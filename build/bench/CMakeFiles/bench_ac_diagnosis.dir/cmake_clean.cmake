file(REMOVE_RECURSE
  "CMakeFiles/bench_ac_diagnosis.dir/bench_ac_diagnosis.cpp.o"
  "CMakeFiles/bench_ac_diagnosis.dir/bench_ac_diagnosis.cpp.o.d"
  "bench_ac_diagnosis"
  "bench_ac_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ac_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
