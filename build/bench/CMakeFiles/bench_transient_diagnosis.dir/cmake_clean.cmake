file(REMOVE_RECURSE
  "CMakeFiles/bench_transient_diagnosis.dir/bench_transient_diagnosis.cpp.o"
  "CMakeFiles/bench_transient_diagnosis.dir/bench_transient_diagnosis.cpp.o.d"
  "bench_transient_diagnosis"
  "bench_transient_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
