# Empty compiler generated dependencies file for bench_transient_diagnosis.
# This may be replaced when dependencies are built.
