// flames_check — independent certificate checker.
//
//   flames_check <netlist.cir> <certificate.txt>
//
// Replays a diagnosis certificate (written by flames_cli --certificate)
// against a model freshly built from the netlist, with no engine code on
// the replay path: every derivation step is recomputed through the
// constraint's own solveFor, every nogood's Dc through the fuzzy
// primitives, and every candidate re-verified as a minimal hitting set of
// the λ-cut conflicts. Exit 0 when the certificate replays clean, 1 with
// one line per violation otherwise, 2 on I/O or parse errors.
#include <iostream>
#include <string>

#include "circuit/parser.h"
#include "prov/certificate.h"
#include "prov/check.h"

int main(int argc, char** argv) {
  using namespace flames;
  if (argc != 3) {
    std::cerr << "usage: flames_check <netlist.cir> <certificate.txt>\n";
    return 2;
  }
  try {
    const circuit::Netlist net = circuit::parseNetlistFile(argv[1]);
    const prov::Certificate cert = prov::loadCertificateFile(argv[2]);
    const prov::CheckResult result = prov::checkCertificate(net, cert);
    std::cout << "checked " << result.entriesChecked << " entries, "
              << result.nogoodsChecked << " nogoods, "
              << result.candidatesChecked << " candidates\n";
    if (result.ok()) {
      std::cout << "certificate OK\n";
      return 0;
    }
    for (const std::string& v : result.violations) {
      std::cout << "VIOLATION " << v << '\n';
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
