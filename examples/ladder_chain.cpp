// Fig. 2 propagation study on the amplifier chain, plus a larger ladder:
// crisp vs fuzzy value propagation and the soft-fault masking effect.
#include <iomanip>
#include <iostream>

#include "baselines/crisp_diagnosis.h"
#include "diagnosis/flames.h"
#include "fuzzy/consistency.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

int main() {
  using namespace flames;
  using fuzzy::FuzzyInterval;

  std::cout << std::fixed << std::setprecision(4);

  // --- Part 1: the Fig. 2 arithmetic, verbatim -----------------------------
  std::cout << "== Fig. 2: crisp vs fuzzy propagation ==\n";
  const auto amp1 = FuzzyInterval::about(1.0, 0.05);
  const auto amp2 = FuzzyInterval::about(2.0, 0.05);
  const auto amp3 = FuzzyInterval::about(3.0, 0.05);

  const auto vaCrisp = FuzzyInterval::crispInterval(2.95, 3.05);
  const auto vaFuzzy = FuzzyInterval::about(3.0, 0.05);
  for (const auto& [label, va] :
       {std::pair{"crisp Va", vaCrisp}, std::pair{"fuzzy Va", vaFuzzy}}) {
    const auto vb = va * amp1;
    const auto vc = vb * amp2;
    const auto vd = vb * amp3;
    std::cout << label << ":\n"
              << "  Vb = " << vb.str() << "\n  Vc = " << vc.str()
              << "\n  Vd = " << vd.str() << '\n';
  }

  // --- Part 2: the masking example ------------------------------------------
  std::cout << "\n== soft fault masking (amp2 = 1.8, Vc measured 5.6) ==\n";
  const auto vaBack = FuzzyInterval::crisp(5.6) / amp2 / amp1;
  std::cout << "back-propagated Va = " << vaBack.str() << '\n';
  std::cout << "crisp check: supports overlap [2.95,3.05]? "
            << std::boolalpha
            << vaBack.supportsOverlap(FuzzyInterval::crispInterval(2.95, 3.05))
            << "  (DIANA sees no fault)\n";
  const auto dc = fuzzy::degreeOfConsistency(vaBack, vaFuzzy);
  std::cout << "fuzzy check: Dc = " << dc.dc << " (deviation "
            << (dc.deviation == fuzzy::Deviation::kBelow ? "below" : "above")
            << " nominal) => partial conflict of degree " << dc.nogoodDegree()
            << '\n';

  // --- Part 3: a longer chain end-to-end ------------------------------------
  std::cout << "\n== 8-stage divider cascade, Rb5 drifted +15% ==\n";
  const auto net = workload::dividerCascade(8);
  const auto probes = workload::tapsOf(net);
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::paramScale("Rb5", 1.15)}, probes);

  diagnosis::FlamesOptions opts;
  opts.measurementSpread = 0.02;
  diagnosis::FlamesEngine engine(net, opts);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  std::cout << "fuzzy engine: " << report.nogoods.size()
            << " ranked nogood(s); best candidate ";
  for (const auto& c : report.bestCandidate()) std::cout << c << ' ';
  std::cout << '\n';

  const auto& built = engine.builtModel();
  std::vector<baselines::CrispMeasurement> crisp;
  for (const auto& r : readings) {
    crisp.push_back(
        {built.voltage(r.node), FuzzyInterval::about(r.volts, 0.02)});
  }
  const auto crispReport = baselines::diagnoseCrisp(built.model, crisp);
  std::cout << "crisp baseline: " << crispReport.nogoods.size()
            << " nogood(s) — soft fault "
            << (crispReport.nogoods.empty() ? "MASKED" : "seen") << '\n';
  return 0;
}
