// Guided troubleshooting session (the paper's Fig. 3 control loop).
//
// The technician measures only the output; FLAMES alternates diagnosis and
// best-test recommendation until one explanation dominates, printing the
// audit trail — which probe was chosen at each step and how the candidate
// set narrowed.
#include <iomanip>
#include <iostream>

#include "circuit/fault.h"
#include "circuit/mna.h"
#include "diagnosis/report.h"
#include "diagnosis/session.h"
#include "workload/generators.h"

int main() {
  using namespace flames;
  using circuit::Fault;

  const auto net = workload::dividerCascade(5);
  const Fault hidden = Fault::shortCircuit("Rb2");
  std::cout << "hidden defect: " << hidden.describe() << "\n\n";

  // The "bench": the faulted board the oracle reads.
  const auto faulted = circuit::applyFaults(net, {hidden});
  const auto op = circuit::DcSolver(faulted).solve();
  const diagnosis::ProbeOracle oracle = [&](const std::string& node) {
    return op.v(faulted.findNode(node));
  };

  diagnosis::FlamesEngine engine(net);
  engine.measure("t5", oracle("t5"));  // initial symptom: output only

  std::vector<diagnosis::TestPoint> probes;
  for (int i = 1; i <= 5; ++i) {
    probes.push_back({"m" + std::to_string(i)});
    if (i < 5) probes.push_back({"t" + std::to_string(i)});
  }

  const auto result = diagnosis::runGuidedSession(engine, probes, oracle);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "session trail:\n";
  for (const auto& step : result.trail) {
    if (step.probedNode.empty()) {
      std::cout << "  initial diagnosis: ";
    } else {
      std::cout << "  probed " << step.probedNode << " = "
                << step.measuredVolts << " V: ";
    }
    std::cout << step.candidateCount << " candidate(s), top "
              << diagnosis::renderComponents(step.topCandidate)
              << " plausibility " << step.topPlausibility << '\n';
  }
  std::cout << "\noutcome: " << diagnosis::sessionOutcomeName(result.outcome)
            << " after " << result.probesUsed << " guided probe(s)\n";
  std::cout << "final report:\n"
            << diagnosis::renderReport(result.finalReport);
  return result.outcome == diagnosis::SessionOutcome::kIsolated ? 0 : 1;
}
