// The paper's Fig. 5 walk-through: candidates with crisp intervals vs fuzzy
// intervals on the diode + two-resistor fragment.
//
// The model is entered exactly as the figure's Measurement/Model/Prediction/
// Assumption table: the diode rating Id <= [-1,100,0,10] uA is a fuzzy
// prediction under {d1}, Kirchhoff propagates it to Ir1 under {d1,r1} and
// Ir2 under {d1,r2}, and the measurements Vr1 = 1.05 V / Vr2 = 2 V drive
// Ohm's law. Units: V / kOhm / mA.
#include <iomanip>
#include <iostream>
#include <memory>

#include "atms/candidates.h"
#include "constraints/propagator.h"

int main() {
  using namespace flames;
  using constraints::Model;
  using constraints::Propagator;
  using fuzzy::FuzzyInterval;

  Model m;
  const auto r1 = m.addAssumption("r1");
  const auto r2 = m.addAssumption("r2");
  const auto d1 = m.addAssumption("d1");
  const auto vr1 = m.addQuantity("Vr1");
  const auto vr2 = m.addQuantity("Vr2");
  const auto gnd = m.addQuantity("V0");
  const auto ir1 = m.addQuantity("Ir1");
  const auto ir2 = m.addQuantity("Ir2");

  m.addPrediction(gnd, FuzzyInterval::crisp(0.0), atms::Environment{});
  const FuzzyInterval rating(-0.001, 0.100, 0.0, 0.010);  // <= ~100 uA
  m.addPrediction(ir1, rating, atms::Environment::of({d1, r1}));
  m.addPrediction(ir2, rating, atms::Environment::of({d1, r2}));
  m.addConstraint(std::make_unique<constraints::OhmConstraint>(
      "ohm(r1)", vr1, gnd, ir1, FuzzyInterval::crisp(10.0),
      atms::Environment::of({r1})));
  m.addConstraint(std::make_unique<constraints::OhmConstraint>(
      "ohm(r2)", vr2, gnd, ir2, FuzzyInterval::crisp(10.0),
      atms::Environment::of({r2})));

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "Fig. 5: measurements Vr1 = 1.05 V, Vr2 = 2 V\n\n";

  Propagator p(m);
  p.addMeasurement(vr1, FuzzyInterval::crisp(1.05));
  p.addMeasurement(vr2, FuzzyInterval::crisp(2.0));
  p.run();

  std::cout << "nogoods (fuzzy degrees — the paper's ranking):\n";
  for (const auto& n : p.nogoods().minimalNogoods(0.0)) {
    std::cout << "  " << m.describe(n.env) << "  degree " << n.degree << '\n';
  }

  std::cout << "\ncandidates at lambda = 0 (all conflicts explained):\n";
  for (const auto& c : atms::candidatesAt(p.nogoods(), 0.01)) {
    std::cout << "  {";
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      std::cout << (i ? "," : "") << m.assumptionName(c.members[i]);
    }
    std::cout << "}  suspicion " << c.suspicion << '\n';
  }

  std::cout << "\ncandidates at lambda = 1 (hard conflicts only — the "
               "explosion-restricting cut):\n";
  for (const auto& c : atms::candidatesAt(p.nogoods(), 1.0)) {
    std::cout << "  {";
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      std::cout << (i ? "," : "") << m.assumptionName(c.members[i]);
    }
    std::cout << "}\n";
  }

  std::cout << "\n(crisp-interval DIANA, by contrast, reports the unranked "
               "candidates {d1} and {r1,r2} with equal weight)\n";
  return 0;
}
