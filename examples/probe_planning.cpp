// Design-for-test probe planning: before the board exists, decide which
// nodes are worth making accessible so that the anticipated fault classes
// are detectable and mutually distinguishable (the design-time dual of the
// §8 best-test problem; cf. the paper's ref [1] on analog DFT).
#include <iostream>

#include "circuit/catalog.h"
#include "diagnosis/probe_placement.h"

int main() {
  using namespace flames;
  using circuit::Fault;

  const auto net = circuit::paperFig6ThreeStageAmp();

  // The fault classes the test engineer anticipates.
  const std::vector<Fault> faults = {
      Fault::shortCircuit("R2"),      Fault::open("R3"),
      Fault::paramScale("R5", 1.5),   Fault::paramScale("R6", 0.5),
      Fault::open("T2"),              Fault::paramScale("R4", 2.0),
  };

  std::cout << "anticipated defects:\n";
  for (const auto& f : faults) std::cout << "  " << f.describe() << '\n';

  const auto plan = diagnosis::placeProbes(net, faults, /*budget=*/3);

  std::cout << "\nper-node diagnostic power (detects / separates):\n";
  for (const auto& s : plan.scores) {
    std::cout << "  " << s.node << ": " << s.detects << " / " << s.separates
              << '\n';
  }

  std::cout << "\nchosen probe set:";
  for (const auto& p : plan.probes) std::cout << ' ' << p;
  std::cout << '\n';

  if (!plan.undetectable.empty()) {
    std::cout << "undetectable faults:";
    for (std::size_t f : plan.undetectable) {
      std::cout << " [" << faults[f].describe() << ']';
    }
    std::cout << '\n';
  }
  if (!plan.ambiguous.empty()) {
    std::cout << "still-ambiguous fault pairs:\n";
    for (const auto& [f, g] : plan.ambiguous) {
      std::cout << "  " << faults[f].describe() << "  vs  "
                << faults[g].describe() << '\n';
    }
  }
  if (plan.undetectable.empty() && plan.ambiguous.empty()) {
    std::cout << "=> every anticipated defect is detectable and "
                 "distinguishable with this probe set\n";
  }
  return 0;
}
