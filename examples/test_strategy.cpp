// Best-test strategies (paper §8): after an ambiguous first measurement the
// engine recommends the probe that minimises expected fuzzy entropy, the
// technician measures it, and the diagnosis sharpens.
#include <iomanip>
#include <iostream>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"
#include "workload/scenarios.h"

int main() {
  using namespace flames;
  using circuit::Fault;

  const auto net = circuit::paperFig6ThreeStageAmp();
  const Fault trueFault = Fault::open("R3");

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "hidden defect: " << trueFault.describe() << "\n\n";

  // Session step 1: only the output Vs is measured — ambiguous.
  const auto vsOnly = workload::simulateMeasurements(net, {trueFault}, {"Vs"});
  diagnosis::FlamesEngine engine(net);
  engine.measure("Vs", vsOnly.front().volts);
  auto report = engine.diagnose();
  std::cout << "-- after measuring Vs only --\n";
  std::cout << "suspects:";
  for (const auto& [comp, s] : report.suspicion) {
    std::cout << ' ' << comp << '(' << s << ')';
  }
  std::cout << "\ncandidates: " << report.candidates.size() << '\n';

  // Ask FLAMES which internal node to probe next.
  const auto tests = engine.recommendTests({{"V1"}, {"V2"}, {"E2"}}, report);
  std::cout << "\n-- recommended next tests (lower expected entropy wins) --\n";
  for (const auto& t : tests) {
    std::cout << "  probe " << t.node << ": expected entropy "
              << t.expectedEntropy.str() << "  score " << t.score << "  ("
              << t.outcomeClusters << " outcome clusters)\n";
  }
  if (tests.empty()) return 1;

  // Session step 2: measure the recommended node and re-diagnose.
  const std::string probe = tests.front().node;
  const auto more = workload::simulateMeasurements(net, {trueFault}, {probe});
  engine.measure(probe, more.front().volts);
  report = engine.diagnose();
  std::cout << "\n-- after measuring " << probe << " --\n";
  std::cout << diagnosis::renderReport(report);
  std::cout << "=> " << diagnosis::summarizeReport(report) << '\n';
  return 0;
}
