// Dynamic-mode diagnosis (paper §9: "tried on different kinds and sizes of
// circuits, either in dynamic mode or in static one").
//
// A two-stage RC filter develops a capacitor fault; the technician measures
// the transfer magnitude at a handful of frequencies, and FLAMES diagnoses
// from the spectral signature — same fuzzy-ATMS pipeline, AC substrate.
#include <iomanip>
#include <iostream>
#include <numbers>

#include "circuit/ac.h"
#include "circuit/fault.h"
#include "diagnosis/ac_diagnosis.h"
#include "diagnosis/report.h"

int main() {
  using namespace flames;
  using circuit::Fault;

  // Unit system: V / kOhm / mA / uF (so kOhm * uF = ms).
  circuit::Netlist net;
  net.addVSource("Vin", "in", "0", 1.0);
  net.addResistor("R1", "in", "m", 1.0, 0.02);
  net.addCapacitor("C1", "m", "0", 1.0, 0.05);    // corner ~0.16 "Hz"
  net.addResistor("R2", "m", "out", 10.0, 0.02);
  net.addCapacitor("C2", "out", "0", 0.1, 0.05);  // corner ~0.16 "Hz" too

  const double f1 = 1.0 / (2.0 * std::numbers::pi);
  const std::vector<diagnosis::AcProbe> probes = {
      {"m", f1 / 10.0}, {"m", f1},  {"m", f1 * 10.0},
      {"out", f1 / 10.0}, {"out", f1}, {"out", f1 * 10.0}};

  const Fault hidden = Fault::open("C1");
  std::cout << "hidden defect: " << hidden.describe() << "\n\n";

  // The bench: solve the faulted circuit's AC response at the probes.
  const circuit::Netlist faulted = circuit::applyFaults(net, {hidden});
  const circuit::AcSolver bench(faulted);

  diagnosis::AcDiagnosisEngine engine(net, "Vin", probes);
  std::cout << std::fixed << std::setprecision(4);
  for (const auto& p : probes) {
    const double mag = bench.gainMagnitude(p.hertz, "Vin", p.node);
    std::cout << "measured |H| at " << p.node << " @ " << p.hertz
              << " Hz = " << mag << '\n';
    engine.measure(p.node, p.hertz, mag);
  }

  const auto report = engine.diagnose();
  std::cout << '\n' << diagnosis::renderAcReport(report);
  if (!report.candidates.empty()) {
    std::cout << "\n=> best candidate "
              << diagnosis::renderComponents(report.bestCandidate()) << '\n';
  }
  return report.faultDetected() ? 0 : 1;
}
