// Quickstart: diagnose a faulty voltage divider in ~30 lines.
//
// Build a netlist, simulate a fault to get a "bench measurement", hand the
// measurement to FLAMES, print the ranked diagnosis.
#include <iostream>

#include "circuit/fault.h"
#include "circuit/mna.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"

int main() {
  using namespace flames;

  // 1. Describe the unit under test (V, kOhm, mA units).
  circuit::Netlist net;
  net.addVSource("V1", "in", "0", 10.0);
  net.addResistor("R1", "in", "mid", 1.0, /*relTol=*/0.05);
  net.addResistor("R2", "mid", "0", 1.0, /*relTol=*/0.05);

  // 2. The "bench": R2 is secretly shorted; measure the mid node.
  const auto faulted =
      circuit::applyFaults(net, {circuit::Fault::shortCircuit("R2")});
  const auto op = circuit::DcSolver(faulted).solve();
  const double midVolts = op.v(faulted.findNode("mid"));
  std::cout << "bench: V(mid) measures " << midVolts << " V (nominal 5 V)\n\n";

  // 3. Diagnose.
  diagnosis::FlamesEngine engine(net);
  engine.measure("mid", midVolts);
  const auto report = engine.diagnose();

  // 4. Inspect.
  std::cout << diagnosis::renderReport(report) << '\n';
  std::cout << "=> " << diagnosis::summarizeReport(report) << '\n';
  return report.faultDetected() ? 0 : 1;
}
