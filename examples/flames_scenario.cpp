// flames_scenario — randomized circuit/fault fuzzing of the diagnosis
// pipeline with a one-command repro workflow.
//
// Harness mode (default): sample `--count` scenarios from `--seed`, run the
// diagnosis oracle on each, shrink any failure to a minimal scenario and
// write it as a replayable `.scenario` file into `--out`.
//
//   flames_scenario --count=200 --seed=1
//   flames_scenario --count=500 --seed=3 --via=service --out=repros
//
// Replay mode: re-run one recorded scenario; add --shrink to minimize a
// failing one before reporting.
//
//   flames_scenario --replay=repros/repro_1_17.scenario
//   flames_scenario --replay=failure.scenario --shrink --out=.
//
// --require-rank=1 tightens the oracle to "culprit must rank first", which
// sign-ambiguous topologies legitimately violate — useful as a deliberately
// broken oracle to watch the shrinker work.
//
// Exit codes: 0 = all scenarios passed, 1 = failures, 2 = usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "constraints/model_builder.h"
#include "diagnosis/report.h"
#include "prov/explain.h"
#include "scenario/harness.h"

namespace {

using namespace flames;

struct Args {
  std::uint32_t seed = 1;
  std::size_t count = 100;
  scenario::OracleVia via = scenario::OracleVia::kEngine;
  std::size_t requireRank = 0;
  std::size_t maxDepth = 6;
  std::string families;  // comma-separated; empty = all
  std::string out = ".";
  std::string replay;
  bool shrink = false;
  bool noShrink = false;
  bool verbose = false;
};

[[noreturn]] void usage(const std::string& bad = {}) {
  if (!bad.empty()) std::cerr << "flames_scenario: unknown argument " << bad << "\n";
  std::cerr
      << "usage: flames_scenario [--count=N] [--seed=N] [--via=engine|service]\n"
         "                       [--require-rank=N] [--max-depth=N]\n"
         "                       [--families=ladder,divider,bridge,ampchain]\n"
         "                       [--out=DIR|--out=] [--no-shrink] [-v]\n"
         "       flames_scenario --replay=FILE [--shrink] [--out=DIR] [-v]\n";
  std::exit(2);
}

bool numArg(const std::string& arg, const std::string& key, std::size_t* out) {
  const std::string prefix = "--" + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = static_cast<std::size_t>(std::stoul(arg.substr(prefix.size())));
  return true;
}

bool strArg(const std::string& arg, const std::string& key, std::string* out) {
  const std::string prefix = "--" + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Args parseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t n = 0;
    std::string s;
    if (numArg(arg, "count", &a.count) ||
        numArg(arg, "require-rank", &a.requireRank) ||
        numArg(arg, "max-depth", &a.maxDepth) ||
        strArg(arg, "families", &a.families) ||
        strArg(arg, "replay", &a.replay)) {
      continue;
    }
    if (numArg(arg, "seed", &n)) {
      a.seed = static_cast<std::uint32_t>(n);
    } else if (strArg(arg, "via", &s)) {
      if (s == "engine") {
        a.via = scenario::OracleVia::kEngine;
      } else if (s == "service") {
        a.via = scenario::OracleVia::kService;
      } else {
        usage(arg);
      }
    } else if (strArg(arg, "out", &s)) {
      a.out = s;
    } else if (arg == "--shrink") {
      a.shrink = true;
    } else if (arg == "--no-shrink") {
      a.noShrink = true;
    } else if (arg == "-v" || arg == "--verbose") {
      a.verbose = true;
    } else {
      usage(arg);
    }
  }
  return a;
}

scenario::GeneratorOptions generatorOptions(const Args& a) {
  scenario::GeneratorOptions g;
  g.topology.maxDepth = a.maxDepth;
  if (!a.families.empty()) {
    std::istringstream fs(a.families);
    std::string name;
    while (std::getline(fs, name, ',')) {
      if (!name.empty()) {
        g.topology.families.push_back(scenario::familyFromName(name));
      }
    }
  }
  return g;
}

// On a failed replay with provenance recorded, print the derivation-level
// explanation for the injected fault component: the nogoods implicating it,
// their Dc values and the constraint chains behind them.
void printFaultExplanation(const scenario::Scenario& s,
                           const scenario::OracleOptions& oracle,
                           const diagnosis::DiagnosisReport& report) {
  if (!report.provenance) return;
  try {
    const circuit::Netlist net = scenario::buildNetlist(s);
    const constraints::BuiltModel built =
        constraints::buildDiagnosticModel(net, oracle.flames.model);
    std::cout << "\n" << prov::renderExplanation(built, report,
                                                 s.fault.component);
  } catch (const std::exception& e) {
    std::cout << "explanation unavailable: " << e.what() << "\n";
  }
}

int replayMode(const Args& a) {
  const scenario::Scenario s = scenario::loadScenarioFile(a.replay);
  std::cout << "replaying " << scenario::describe(s) << "\n";

  scenario::OracleOptions oracle;
  oracle.via = a.via;
  oracle.requireRankAtMost = a.requireRank;
  scenario::OracleResult r = scenario::runOracle(s, oracle);

  scenario::Scenario current = s;
  if (!r.passed() && a.shrink) {
    std::cout << "shrinking...\n";
    const std::string path =
        (a.out.empty() ? std::string(".") : a.out) + "/shrunk.scenario";
    // Neither a throwing shrink probe nor a throwing post-shrink oracle run
    // may lose the repro: the .scenario file is written before the re-run,
    // and a throw downgrades to a reported failure, not a process abort.
    try {
      const scenario::ShrinkResult sr = scenario::shrink(s, oracle);
      std::cout << "  " << sr.accepted << " reductions accepted ("
                << sr.attempted << " oracle runs)\n";
      std::cout << "minimal: " << scenario::describe(sr.scenario) << "\n";
      current = sr.scenario;
    } catch (const std::exception& e) {
      std::cout << "shrink threw: " << e.what()
                << "; keeping the unshrunk scenario\n";
    }
    scenario::writeScenarioFile(path, current);
    std::cout << "wrote " << path << "\n";
    try {
      r = scenario::runOracle(current, oracle);
    } catch (const std::exception& e) {
      std::cout << "FAIL:\n  post-shrink oracle run threw: " << e.what()
                << "\n  repro preserved: " << path << "\n";
      return 1;
    }
  }

  if (a.verbose) std::cout << diagnosis::renderReport(r.report);
  if (r.passed()) {
    std::cout << "PASS: culprit rank " << r.culpritRank << " (degree "
              << r.culpritDegree << ")\n";
    return 0;
  }
  std::cout << "FAIL:\n";
  for (const std::string& v : r.violations) std::cout << "  " << v << "\n";
  printFaultExplanation(current, oracle, r.report);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  try {
    if (!args.replay.empty()) return replayMode(args);

    scenario::HarnessOptions opts;
    opts.seed = args.seed;
    opts.count = args.count;
    opts.generator = generatorOptions(args);
    opts.oracle.via = args.via;
    opts.oracle.requireRankAtMost = args.requireRank;
    opts.shrinkFailures = !args.noShrink;
    opts.reproDir = args.out;
    opts.verbose = args.verbose;

    const scenario::HarnessResult result =
        scenario::runHarness(opts, &std::cout);
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "flames_scenario: " << e.what() << "\n";
    return 2;
  }
}
