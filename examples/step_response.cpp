// Time-domain (step-response) diagnosis: a drifted capacitor that leaves
// every DC level untouched is caught from its rise-time signature — the
// class of dynamic fault §2.1 calls out as the hard case.
#include <iomanip>
#include <iostream>

#include "circuit/fault.h"
#include "circuit/transient.h"
#include "diagnosis/report.h"
#include "diagnosis/transient_diagnosis.h"

int main() {
  using namespace flames;
  using circuit::Fault;

  // Units: V / kOhm / uF => time in ms.
  circuit::Netlist net;
  net.addVSource("Vin", "in", "0", 0.0);
  net.addResistor("R1", "in", "m", 1.0, 0.02);
  net.addCapacitor("C1", "m", "0", 1.0, 0.05);   // tau1 = 1 ms
  net.addGain("buf", "m", "b", 1.0, 0.0);
  net.addResistor("R2", "b", "out", 2.0, 0.02);
  net.addCapacitor("C2", "out", "0", 0.1, 0.05); // tau2 = 0.2 ms

  const Fault hidden = Fault::paramScale("C1", 3.0);
  std::cout << "hidden defect: " << hidden.describe()
            << "  (DC levels unchanged — only the dynamics shift)\n\n";

  const std::vector<diagnosis::StepProbe> probes = {
      {"m", diagnosis::StepFeature::kRiseTime},
      {"m", diagnosis::StepFeature::kFinalValue},
      {"out", diagnosis::StepFeature::kRiseTime},
      {"out", diagnosis::StepFeature::kFinalValue}};

  diagnosis::TransientDiagnosisOptions opts;
  opts.transient.timeStep = 0.02;
  opts.duration = 40.0;
  diagnosis::TransientDiagnosisEngine engine(net, "Vin", probes, opts);

  // The bench: acquire the faulted board's step-response features.
  const auto board = circuit::applyFaults(net, {hidden});
  std::cout << std::fixed << std::setprecision(4);
  for (const auto& p : probes) {
    const auto v = engine.simulateFeature(board, p);
    if (!v) continue;
    std::cout << "measured " << diagnosis::TransientDiagnosisEngine::quantityName(p)
              << " = " << *v << '\n';
    engine.measure(p, *v);
  }

  const auto report = engine.diagnose();
  std::cout << '\n' << diagnosis::renderAcReport(report);
  std::cout << "\n=> best candidate "
            << diagnosis::renderComponents(report.bestCandidate())
            << "  (note the inherent tau = R*C ambiguity: an R1 drift and a "
               "C1 drift co-explain rise/final features)\n";
  return report.faultDetected() ? 0 : 1;
}
