// The paper's evaluation circuit (Fig. 6): a 3-stage BJT amplifier.
//
// Replays the five defect scenarios of Fig. 7 and prints, for each, the
// Dc table, the ranked nogoods and the refined candidates — the same
// columns the paper tabulates.
#include <iomanip>
#include <iostream>

#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"
#include "workload/scenarios.h"

int main() {
  using namespace flames;
  using circuit::Fault;

  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();

  // Show the nominal operating point first (all transistors linear).
  const auto nominal = circuit::DcSolver(net).solve();
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "nominal operating point: V1 = " << nominal.v(net.findNode("V1"))
            << " V, V2 = " << nominal.v(net.findNode("V2"))
            << " V, Vs = " << nominal.v(net.findNode("Vs")) << " V\n";
  std::cout << "saturation warning: " << std::boolalpha
            << nominal.saturationWarning << "\n\n";

  struct Scenario {
    const char* name;
    std::vector<Fault> faults;
  };
  // The two "slight" rows also run in an observable-scaled variant: with
  // this reconstruction of the (partly implicit) Fig. 6 wiring, the paper's
  // exact deviations shift the probes by less than 0.1% and are reported as
  // masked; the scaled variants exercise the same partial-conflict
  // machinery (see EXPERIMENTS.md, E3).
  const std::vector<Scenario> scenarios = {
      {"short circuit on R2", {Fault::shortCircuit("R2")}},
      {"R2 slightly high (12.18 kOhm, paper value)",
       {Fault::paramExact("R2", 12.18)}},
      {"R2 slightly high (14.4 kOhm, observable-scaled)",
       {Fault::paramExact("R2", 14.4)}},
      {"Beta2 slightly low (194, paper value)",
       {Fault::paramExact("T2", 194.0)}},
      {"Beta2 low (60, observable-scaled)", {Fault::paramExact("T2", 60.0)}},
      {"open circuit on R3", {Fault::open("R3")}},
      {"open circuit in N1", {Fault::pinOpen("T1", 1)}},
  };

  for (const Scenario& s : scenarios) {
    std::cout << "==================================================\n";
    std::cout << "DEFECT: " << s.name << '\n';
    std::vector<workload::ProbeReading> readings;
    try {
      readings =
          workload::simulateMeasurements(net, s.faults, {"V1", "V2", "Vs"});
    } catch (const std::exception& e) {
      std::cout << "  (faulted circuit unsolvable: " << e.what() << ")\n";
      continue;
    }
    diagnosis::FlamesEngine engine(net);
    for (const auto& r : readings) {
      std::cout << "  measured " << r.node << " = " << r.volts << " V\n";
      engine.measure(r.node, r.volts);
    }
    const auto report = engine.diagnose();
    std::cout << diagnosis::renderReport(report);
    std::cout << "=> " << diagnosis::summarizeReport(report) << "\n\n";
  }
  return 0;
}
