// flames_cli — diagnose a board from files, no C++ required.
//
//   flames_cli <netlist.cir> <measurements.txt> [experience.txt]
//
// The netlist uses the SPICE-style card format of circuit/parser.h; the
// measurements file holds one "<node> <volts>" pair per line ('#' comments).
// If an experience file is given it is loaded before and saved after the
// session, so confirmed diagnoses accumulate across runs (confirmation is
// entered interactively when stdin is a terminal — here we simply persist
// the base untouched).
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/parser.h"
#include "diagnosis/experience_io.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"

namespace {

struct Measurement {
  std::string node;
  double volts = 0.0;
};

std::vector<Measurement> readMeasurements(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open measurements: " + path);
  std::vector<Measurement> out;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    Measurement m;
    if (!(ls >> m.node)) continue;  // blank line
    if (!(ls >> m.volts)) {
      throw std::runtime_error("measurements line " + std::to_string(lineNo) +
                               ": expected '<node> <volts>'");
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flames;
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: flames_cli <netlist.cir> <measurements.txt> "
                 "[experience.txt]\n";
    return 2;
  }
  try {
    const circuit::Netlist net = circuit::parseNetlistFile(argv[1]);
    const auto measurements = readMeasurements(argv[2]);
    if (measurements.empty()) {
      std::cerr << "no measurements given\n";
      return 2;
    }

    diagnosis::FlamesEngine engine(net);
    if (argc == 4) {
      try {
        const std::size_t n =
            diagnosis::loadExperienceFile(engine.experience(), argv[3]);
        std::cout << "loaded " << n << " learned rule(s) from " << argv[3]
                  << "\n";
      } catch (const std::runtime_error&) {
        std::cout << "starting a fresh experience base at " << argv[3] << "\n";
      }
    }

    for (const Measurement& m : measurements) {
      engine.measure(m.node, m.volts);
    }
    const auto report = engine.diagnose();
    std::cout << diagnosis::renderReport(report);
    std::cout << "=> " << diagnosis::summarizeReport(report) << '\n';

    if (argc == 4) {
      diagnosis::saveExperienceFile(engine.experience(), argv[3]);
    }
    return report.faultDetected() ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
