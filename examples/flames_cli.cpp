// flames_cli — diagnose a board from files, no C++ required.
//
//   flames_cli [--trace=<file.json>] [--metrics] [--probe=<node>=<volts>]...
//              <netlist.cir> <measurements.txt> [experience.txt]
//   flames_cli --lint [--lint-json] [--Werror] <netlist.cir>
//   flames_cli --analyze [--analyze-json] [--Werror] <netlist.cir>
//
// The netlist uses the SPICE-style card format of circuit/parser.h; the
// measurements file holds one "<node> <volts>" pair per line ('#' comments).
// If an experience file is given it is loaded before and saved after the
// session, so confirmed diagnoses accumulate across runs (confirmation is
// entered interactively when stdin is a terminal — here we simply persist
// the base untouched).
//
// --trace=<file.json> records a span for every pipeline stage and writes
// Chrome trace_event JSON (open in chrome://tracing or Perfetto);
// --metrics prints the flames::obs counter/histogram dump after the report.
//
// --lint runs the full static-analysis pass — the syntactic rules L1-L6
// (including the per-component-simulation L6 diagnosability audit that the
// build gate skips) plus the semantic tier A1-A3 when the model builds —
// and exits without diagnosing: 0 when the model is usable, 2 when
// error-grade findings (or any finding under --Werror) were reported.
// --lint-json emits the machine-readable report instead of text.
//
// --analyze runs only the semantic analysis (flames::analyze) and prints
// the full report: per-quantity static envelopes, the certified propagation
// cost bounds with the derived entry cap, the structural decomposition and
// ambiguity groups, and the A1-A3 findings. Exit codes mirror --lint.
// --analyze-json emits the machine-readable report instead.
//
// --explain=<target> records the run's derivation provenance and, after the
// report, prints why <target> (a component like R2, or a quantity like
// "V(out)") is implicated: the nogoods naming it with their Dc values and
// the constraint chains behind each colliding value. --explain-json=<t>
// emits the machine form. --certificate=<file> writes the run's replayable
// certificate (verify with flames_check <netlist.cir> <file>).
//
// --probe=<node>=<volts> (repeatable) applies follow-up probes after the
// initial diagnosis, one at a time, through the incremental session
// (FlamesEngine::addMeasurement): each probe extends the propagation state
// inside its compiled impact cone instead of re-diagnosing from scratch.
// A per-probe line reports the latency, the kept-entry delta and whether
// the probe ran incrementally or fell back to a batch recompute (entry-cap
// saturation); the final report follows the last probe. Incompatible with
// --explain/--certificate (the incremental path records no provenance).
//
// --kb-dir=<dir> opens a durable experience store (flames::kb — write-ahead
// log + snapshot) in <dir>; its learned rules seed the engine before the
// diagnosis, and --kb-confirm=<component>:<mode> records the run's symptom
// signature back into the store afterwards (the WAL makes this
// crash-safe). --kb-origin=<id> names a freshly created store (instances
// that will merge must use distinct origins; an existing dir keeps its
// recorded identity). --kb-merge=<peer-dir> (repeatable) joins a peer
// instance's store into ours before diagnosing; --kb-stats prints the
// store counters.
// With --kb-dir but no netlist/measurements, flames_cli runs in KB
// maintenance mode: apply the merges, print the stats, exit 0.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "analyze/analyze.h"
#include "circuit/parser.h"
#include "diagnosis/experience_io.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"
#include "kb/store.h"
#include "lint/model_lint.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "prov/certificate.h"
#include "prov/explain.h"

namespace {

struct Measurement {
  std::string node;
  double volts = 0.0;
};

struct CliOptions {
  std::string traceFile;  ///< empty = no tracing
  bool metrics = false;
  bool lint = false;      ///< lint-only mode, no diagnosis
  bool lintJson = false;  ///< machine-readable lint output (implies --lint)
  bool analyze = false;   ///< semantic-analysis-only mode, no diagnosis
  bool analyzeJson = false;  ///< machine-readable analysis (implies --analyze)
  bool werror = false;    ///< escalate lint warnings to errors
  std::string explainTarget;   ///< component/quantity to explain; empty = off
  bool explainJson = false;    ///< machine-readable explanation
  std::string certificateFile;  ///< write the replayable certificate here
  std::string kbDir;            ///< durable experience store; empty = off
  std::string kbOrigin = "cli";  ///< identity for a *fresh* store dir
  std::vector<std::string> kbMerge;  ///< peer store dirs to join first
  bool kbStats = false;              ///< print KB counters
  std::string kbConfirm;  ///< "<component>:<mode>" to confirm after the run
  /// Follow-up probes (--probe=node=volts, repeatable) applied one at a
  /// time after the initial diagnosis through the incremental path.
  std::vector<Measurement> probes;
  std::vector<std::string> positional;
};

CliOptions parseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      opts.traceFile = arg.substr(8);
      if (opts.traceFile.empty()) {
        throw std::runtime_error("--trace= needs a file name");
      }
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--lint") {
      opts.lint = true;
    } else if (arg == "--lint-json") {
      opts.lint = true;
      opts.lintJson = true;
    } else if (arg == "--analyze") {
      opts.analyze = true;
    } else if (arg == "--analyze-json") {
      opts.analyze = true;
      opts.analyzeJson = true;
    } else if (arg == "--Werror") {
      opts.werror = true;
    } else if (arg.rfind("--explain=", 0) == 0) {
      opts.explainTarget = arg.substr(10);
      if (opts.explainTarget.empty()) {
        throw std::runtime_error("--explain= needs a component or quantity");
      }
    } else if (arg.rfind("--explain-json=", 0) == 0) {
      opts.explainTarget = arg.substr(15);
      opts.explainJson = true;
      if (opts.explainTarget.empty()) {
        throw std::runtime_error(
            "--explain-json= needs a component or quantity");
      }
    } else if (arg.rfind("--certificate=", 0) == 0) {
      opts.certificateFile = arg.substr(14);
      if (opts.certificateFile.empty()) {
        throw std::runtime_error("--certificate= needs a file name");
      }
    } else if (arg.rfind("--kb-dir=", 0) == 0) {
      opts.kbDir = arg.substr(9);
      if (opts.kbDir.empty()) {
        throw std::runtime_error("--kb-dir= needs a directory");
      }
    } else if (arg.rfind("--kb-origin=", 0) == 0) {
      opts.kbOrigin = arg.substr(12);
      if (opts.kbOrigin.empty()) {
        throw std::runtime_error("--kb-origin= needs an id");
      }
    } else if (arg.rfind("--kb-merge=", 0) == 0) {
      opts.kbMerge.push_back(arg.substr(11));
      if (opts.kbMerge.back().empty()) {
        throw std::runtime_error("--kb-merge= needs a peer directory");
      }
    } else if (arg.rfind("--probe=", 0) == 0) {
      const std::string spec = arg.substr(8);
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        throw std::runtime_error("--probe= needs <node>=<volts>");
      }
      Measurement probe;
      probe.node = spec.substr(0, eq);
      try {
        probe.volts = std::stod(spec.substr(eq + 1));
      } catch (const std::exception&) {
        throw std::runtime_error("--probe=: bad voltage in " + spec);
      }
      opts.probes.push_back(std::move(probe));
    } else if (arg == "--kb-stats") {
      opts.kbStats = true;
    } else if (arg.rfind("--kb-confirm=", 0) == 0) {
      opts.kbConfirm = arg.substr(13);
      if (opts.kbConfirm.find(':') == std::string::npos) {
        throw std::runtime_error(
            "--kb-confirm= needs <component>:<mode>");
      }
    } else if (arg.rfind("--", 0) == 0) {
      throw std::runtime_error("unknown flag: " + arg);
    } else {
      opts.positional.push_back(arg);
    }
  }
  if (!opts.probes.empty() &&
      (!opts.explainTarget.empty() || !opts.certificateFile.empty())) {
    // The incremental session does not record provenance (see
    // diagnosis::IncrementalSession); the explanation/certificate features
    // need the batch pipeline.
    throw std::runtime_error(
        "--probe= cannot be combined with --explain/--certificate");
  }
  return opts;
}

// The full static-analysis pass: source-level L4 first (so a card that does
// not even parse is reported instead of thrown), then — when the netlist
// parses — the netlist, model, KB and diagnosability rules.
int runLint(const CliOptions& cli) {
  using namespace flames;
  std::ifstream is(cli.positional[0]);
  if (!is) {
    throw std::runtime_error("cannot open netlist: " + cli.positional[0]);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  lint::LintOptions lopts;
  lopts.warningsAsErrors = cli.werror;
  lint::LintReport report = lint::lintSource(text, lopts);

  if (report.ok()) {
    const circuit::Netlist net = circuit::parseNetlistString(text);
    lint::ModelLintInputs inputs;
    inputs.netlist = &net;

    // Build what the model-level rules need; a failed build becomes a
    // finding (the netlist rules usually explain it) rather than an abort.
    constraints::ModelBuildOptions buildOpts;
    buildOpts.lintBeforeBuild = false;  // we are the lint pass
    std::optional<constraints::BuiltModel> built;
    diagnosis::KnowledgeBase kb;
    std::optional<diagnosis::SensitivitySigns> signs;
    lint::LintReport buildFailure;
    try {
      built.emplace(constraints::buildDiagnosticModel(net, buildOpts));
      diagnosis::addTransistorRegionRules(kb, net, *built);
      inputs.built = &*built;
      inputs.kb = &kb;
      signs.emplace(net, diagnosis::DeviationAnalysisOptions{});
      inputs.signs = &*signs;
    } catch (const std::exception& e) {
      buildFailure.diagnostics.push_back(
          {"L2", lint::Severity::kError, "model",
           std::string("diagnostic model cannot be built: ") + e.what(),
           "fix the netlist-level findings above first"});
    }
    // Netlist-level findings first (lintModel leads with them), then the
    // build failure they usually explain.
    report.merge(lint::lintModel(inputs, lopts));
    report.merge(buildFailure);

    // The semantic tier A1-A3 rides along whenever the model builds: the
    // envelopes/cost/structure findings extend the syntactic rules in the
    // same report, so one --lint invocation covers both tiers.
    if (built.has_value()) {
      const analyze::AnalysisReport analysis = analyze::analyzeModel(
          *built,
          analyze::analysisOptionsFor(constraints::PropagatorOptions{}));
      report.merge(analysis.findings);
    }
  }

  if (cli.lintJson) {
    std::cout << lint::lintReportJson(report) << '\n';
  } else {
    std::cout << lint::renderLintReport(report);
  }
  const bool pass =
      report.ok() && (!cli.werror || report.warnings() == 0);
  return pass ? 0 : 2;
}

// Semantic-analysis-only mode: parse, build the diagnostic model, run the
// A1-A3 passes under the stock propagation knobs and print the full report.
// A netlist that does not parse or build aborts via the usual exception
// path (exit 2) — for pre-build findings, --lint is the right tool.
int runAnalyze(const CliOptions& cli) {
  using namespace flames;
  const circuit::Netlist net = circuit::parseNetlistFile(cli.positional[0]);
  constraints::ModelBuildOptions buildOpts;
  const constraints::BuiltModel built =
      constraints::buildDiagnosticModel(net, buildOpts);
  const analyze::AnalysisReport report = analyze::analyzeModel(
      built, analyze::analysisOptionsFor(constraints::PropagatorOptions{}));

  if (cli.analyzeJson) {
    std::cout << analyze::analysisReportJson(report) << '\n';
  } else {
    std::cout << analyze::renderAnalysisReport(report);
  }
  const bool pass =
      report.ok() && (!cli.werror || report.findings.warnings() == 0);
  return pass ? 0 : 2;
}

flames::kb::KbOptions makeKbOptions(const std::string& dir,
                                    const std::string& origin) {
  flames::kb::KbOptions ko;
  ko.dir = dir;
  ko.origin = origin;
  return ko;
}

// Joins each peer directory's store into ours. A missing peer is an error
// (opening it would silently create an empty store and merge nothing).
void applyKbMerges(flames::kb::KbStore& store,
                   const std::vector<std::string>& peers) {
  namespace fs = std::filesystem;
  for (const std::string& peer : peers) {
    if (!fs::exists(peer)) {
      throw std::runtime_error("--kb-merge: no store at " + peer);
    }
    // The id here only names a peer dir that is brand new (an existing
    // store keeps its durable identity); we never write to it either way.
    const flames::kb::KbStore peerStore(makeKbOptions(peer, "cli-peer"));
    store.mergeFrom(peerStore);
    std::cout << "merged KB from " << peer << "\n";
  }
}

void printKbStats(const flames::kb::KbStore& store) {
  const flames::kb::KbStats s = store.stats();
  std::cout << "kb stats: rules=" << s.rules << " live=" << s.liveRules
            << " tombstones=" << s.tombstoneSlots << " origins=" << s.origins
            << " localTick=" << s.localTick << " walEvents=" << s.walEvents
            << " walReplayed=" << s.walReplayed
            << " recoveredTail=" << (s.walRecoveredTail ? "yes" : "no")
            << " compactions=" << s.compactions
            << " evictions=" << s.evictions << " merges=" << s.merges
            << "\n";
}

std::vector<Measurement> readMeasurements(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open measurements: " + path);
  std::vector<Measurement> out;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    Measurement m;
    if (!(ls >> m.node)) continue;  // blank line
    if (!(ls >> m.volts)) {
      throw std::runtime_error("measurements line " + std::to_string(lineNo) +
                               ": expected '<node> <volts>'");
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flames;
  try {
    const CliOptions cli = parseArgs(argc, argv);
    if (cli.lint) {
      if (cli.positional.size() != 1) {
        std::cerr << "usage: flames_cli --lint [--lint-json] [--Werror] "
                     "<netlist.cir>\n";
        return 2;
      }
      return runLint(cli);
    }
    if (cli.analyze) {
      if (cli.positional.size() != 1) {
        std::cerr << "usage: flames_cli --analyze [--analyze-json] "
                     "[--Werror] <netlist.cir>\n";
        return 2;
      }
      return runAnalyze(cli);
    }
    // KB maintenance mode: no board to diagnose, just merge peers into the
    // store and report on it.
    if (!cli.kbDir.empty() && cli.positional.empty()) {
      kb::KbStore store(makeKbOptions(cli.kbDir, cli.kbOrigin));
      applyKbMerges(store, cli.kbMerge);
      if (cli.kbStats) printKbStats(store);
      std::cout << "kb at " << cli.kbDir << ": " << store.stats().liveRules
                << " live rule(s)\n";
      return 0;
    }
    if (cli.positional.size() < 2 || cli.positional.size() > 3) {
      std::cerr << "usage: flames_cli [--trace=<file.json>] [--metrics] "
                   "[--explain=<component|quantity>] "
                   "[--certificate=<file>] "
                   "[--kb-dir=<dir>] [--kb-origin=<id>] "
                   "[--kb-merge=<peer-dir>] [--kb-stats] "
                   "[--kb-confirm=<component>:<mode>] "
                   "<netlist.cir> <measurements.txt> [experience.txt]\n"
                   "       flames_cli --lint [--lint-json] [--Werror] "
                   "<netlist.cir>\n"
                   "       flames_cli --analyze [--analyze-json] [--Werror] "
                   "<netlist.cir>\n"
                   "       flames_cli --kb-dir=<dir> [--kb-merge=<peer-dir>] "
                   "[--kb-stats]\n";
      return 2;
    }
    if (cli.metrics) obs::setEnabled(true);
    if (!cli.traceFile.empty()) obs::setTracing(true);

    const circuit::Netlist net = circuit::parseNetlistFile(cli.positional[0]);
    const auto measurements = readMeasurements(cli.positional[1]);
    if (measurements.empty()) {
      std::cerr << "no measurements given\n";
      return 2;
    }
    const bool haveExperience = cli.positional.size() == 3;

    diagnosis::FlamesOptions engineOptions;
    if (!cli.explainTarget.empty() || !cli.certificateFile.empty()) {
      engineOptions.recordProvenance = true;
    }
    std::optional<kb::KbStore> kbStore;
    if (!cli.kbDir.empty()) {
      kbStore.emplace(makeKbOptions(cli.kbDir, cli.kbOrigin));
      applyKbMerges(*kbStore, cli.kbMerge);
    }

    diagnosis::FlamesEngine engine(net, engineOptions);
    if (kbStore.has_value()) {
      // Learned rules from the durable store seed the session's experience
      // base (alongside any experience.txt rules loaded below).
      std::size_t seeded = 0;
      for (const diagnosis::SymptomRule& r : kbStore->materialized().rules()) {
        engine.experience().restoreRule(r);
        ++seeded;
      }
      std::cout << "kb at " << cli.kbDir << ": seeded " << seeded
                << " learned rule(s)\n";
    }
    if (haveExperience) {
      const std::string& path = cli.positional[2];
      // A missing file is a normal first run; an unreadable or corrupt one
      // aborts before diagnose() so the save below cannot clobber it.
      const auto n =
          diagnosis::loadExperienceFileIfExists(engine.experience(), path);
      if (n.has_value()) {
        std::cout << "loaded " << *n << " learned rule(s) from " << path
                  << "\n";
      } else {
        std::cout << "starting a fresh experience base at " << path << "\n";
      }
    }

    for (const Measurement& m : measurements) {
      engine.measure(m.node, m.volts);
    }
    auto report = engine.diagnose();
    std::cout << diagnosis::renderReport(report);
    std::cout << "=> " << diagnosis::summarizeReport(report) << '\n';

    // Interactive follow-up probes: each one extends the session through the
    // compiled-schedule incremental path instead of re-diagnosing from
    // scratch (or, under entry-cap saturation, transparently recomputes —
    // the per-probe line says which).
    if (!cli.probes.empty()) {
      for (const Measurement& p : cli.probes) {
        const bool firstProbe = engine.incrementalSession() == nullptr;
        const auto t0 = std::chrono::steady_clock::now();
        report = engine.addMeasurement(p.node, p.volts);
        const auto t1 = std::chrono::steady_clock::now();
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count();
        const diagnosis::IncrementalSession* session =
            engine.incrementalSession();
        std::cout << "probe " << p.node << " = " << p.volts << " V: "
                  << micros << " us, ";
        if (session != nullptr && session->lastIncremental()) {
          std::cout << session->lastStepsDelta() << " new entr"
                    << (session->lastStepsDelta() == 1 ? "y" : "ies") << ", "
                    << session->lastTouched().size()
                    << " quantit" << (session->lastTouched().size() == 1
                                          ? "y" : "ies")
                    << " touched (incremental)\n";
        } else if (firstProbe) {
          std::cout << "session seed (from-scratch propagation)\n";
        } else {
          std::cout << "batch recompute (entry cap saturated)\n";
        }
      }
      std::cout << diagnosis::renderReport(report);
      std::cout << "=> " << diagnosis::summarizeReport(report) << '\n';
    }

    if (!cli.explainTarget.empty()) {
      if (cli.explainJson) {
        std::cout << prov::explanationJson(engine.builtModel(), report,
                                           cli.explainTarget)
                  << '\n';
      } else {
        std::cout << prov::renderExplanation(engine.builtModel(), report,
                                             cli.explainTarget);
      }
    }
    if (!cli.certificateFile.empty()) {
      const prov::Certificate cert = prov::buildCertificate(
          engine.builtModel(), *report.provenance, engine.observations());
      prov::writeCertificateFile(cli.certificateFile, cert);
      std::cout << "certificate written to " << cli.certificateFile
                << " (verify: flames_check " << cli.positional[0] << ' '
                << cli.certificateFile << ")\n";
    }
    if (kbStore.has_value() && !cli.kbConfirm.empty()) {
      const auto colon = cli.kbConfirm.find(':');
      const std::string component = cli.kbConfirm.substr(0, colon);
      const std::string mode = cli.kbConfirm.substr(colon + 1);
      kbStore->recordSuccess(report.signature, component, mode);
      std::cout << "confirmed " << component << ":" << mode
                << " into the KB (" << report.signature.size()
                << " symptom(s))\n";
    }
    if (kbStore.has_value() && cli.kbStats) printKbStats(*kbStore);
    if (haveExperience) {
      diagnosis::saveExperienceFile(engine.experience(), cli.positional[2]);
    }
    if (cli.metrics) std::cout << obs::renderMetrics();
    if (!cli.traceFile.empty()) {
      obs::writeChromeTraceFile(cli.traceFile);
      std::cout << "trace written to " << cli.traceFile << " ("
                << obs::Tracer::global().size()
                << " spans; open in chrome://tracing)\n";
    }
    return report.faultDetected() ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
