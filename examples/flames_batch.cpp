// flames_batch — replay a synthetic fault-scenario stream through the
// concurrent batch-diagnosis service and report throughput, latency
// percentiles and model-cache effectiveness.
//
//   flames_batch [--workers=N] [--jobs=N] [--sections=N] [--seed=N]
//                [--noise=V] [--deadline-ms=N] [--obs] [--lint] [--analyze]
//                [--Werror] [--explain=COMPONENT]
//
// --explain=COMPONENT turns provenance recording on for every request and,
// after the stream drains, prints the derivation-level explanation for the
// named component (nogoods, Dc values, constraint chains) from the first
// completed job that detected a fault — the batch-side twin of
// `flames_cli --explain`.
//
// --lint prints the syntactic lint report for the generated netlist before
// any job is submitted and aborts (exit 2) on error-grade findings;
// --analyze does the same with the semantic analysis report (static
// envelopes, cost bounds, ambiguity groups — lint tier A1-A3), mirroring
// the checks the service itself applies per unit type; --Werror escalates
// warnings to errors in both reports and in the service's own submit gate.
//
// The workload is workload::synthesizeTraffic over a resistor ladder: each
// item is one board on the bench with a sampled injected fault and the
// probe readings it produces. All items share one netlist, so after the
// first job compiles the diagnostic model every later job should hit the
// cache — the printed hit/miss counters verify that.
//
// --kb-dir=<dir> backs the service's experience base with a durable
// flames::kb store (WAL + snapshot) in <dir>, so rules confirmed by this
// instance survive the process and merge across the fleet;
// --kb-origin=<id> names a freshly created store (merging instances need
// distinct origins — an existing dir keeps its recorded identity).
// --kb-merge=<peer-dir> (repeatable) joins peer stores before the stream;
// --kb-confirm records each detected fault's injected culprit back into
// the store as a confirmed diagnosis (the generator knows the truth, so
// the batch driver can close the learning loop); --kb-stats prints the
// store counters after the stream drains.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "circuit/fault.h"
#include "constraints/model_builder.h"
#include "kb/store.h"
#include "lint/lint.h"
#include "obs/obs.h"
#include "prov/explain.h"
#include "service/service.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;

struct Args {
  std::size_t workers = 4;
  std::size_t jobs = 64;
  std::size_t sections = 4;
  std::uint32_t seed = 42;
  double noise = 0.0;
  long deadlineMs = 0;
  bool obs = false;
  bool lint = false;
  bool analyze = false;
  bool werror = false;
  std::string explain;
  std::string kbDir;                 ///< durable experience store; empty = off
  std::string kbOrigin = "batch";    ///< identity for a *fresh* store dir
  std::vector<std::string> kbMerge;  ///< peer store dirs to join first
  bool kbStats = false;
  bool kbConfirm = false;  ///< confirm injected culprits into the store
};

bool parseSize(const std::string& arg, const std::string& key,
               std::size_t* out) {
  const std::string prefix = "--" + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = static_cast<std::size_t>(std::stoul(arg.substr(prefix.size())));
  return true;
}

Args parseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t v = 0;
    if (parseSize(arg, "workers", &a.workers) ||
        parseSize(arg, "jobs", &a.jobs) ||
        parseSize(arg, "sections", &a.sections)) {
      continue;
    }
    if (parseSize(arg, "seed", &v)) {
      a.seed = static_cast<std::uint32_t>(v);
    } else if (arg.rfind("--noise=", 0) == 0) {
      a.noise = std::stod(arg.substr(8));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      a.deadlineMs = std::stol(arg.substr(14));
    } else if (arg == "--obs") {
      a.obs = true;
    } else if (arg == "--lint") {
      a.lint = true;
    } else if (arg == "--analyze") {
      a.analyze = true;
    } else if (arg == "--Werror") {
      a.werror = true;
    } else if (arg.rfind("--explain=", 0) == 0) {
      a.explain = arg.substr(10);
      if (a.explain.empty()) {
        std::cerr << "flames_batch: --explain needs a component name\n";
        std::exit(2);
      }
    } else if (arg.rfind("--kb-dir=", 0) == 0) {
      a.kbDir = arg.substr(9);
    } else if (arg.rfind("--kb-origin=", 0) == 0) {
      a.kbOrigin = arg.substr(12);
    } else if (arg.rfind("--kb-merge=", 0) == 0) {
      a.kbMerge.push_back(arg.substr(11));
    } else if (arg == "--kb-stats") {
      a.kbStats = true;
    } else if (arg == "--kb-confirm") {
      a.kbConfirm = true;
    } else {
      std::cerr << "flames_batch: unknown argument " << arg << "\n"
                << "usage: flames_batch [--workers=N] [--jobs=N] "
                   "[--sections=N] [--seed=N] [--noise=V] [--deadline-ms=N] "
                   "[--obs] [--lint] [--analyze] [--Werror] "
                   "[--explain=COMPONENT] [--kb-dir=DIR] [--kb-origin=ID] "
                   "[--kb-merge=PEER-DIR] [--kb-confirm] [--kb-stats]\n";
      std::exit(2);
    }
  }
  return a;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  if (args.obs) obs::setEnabled(true);

  // The unit type under test and the request stream against it.
  const auto net = std::make_shared<const circuit::Netlist>(
      workload::resistorLadder(args.sections));
  const auto probes = workload::tapsOf(*net, "t");
  const auto traffic =
      workload::synthesizeTraffic(*net, probes, args.jobs, args.seed,
                                  args.noise);
  // --jobs=0 is KB maintenance mode: open the store, run the merges,
  // print the stats — submit nothing.
  if (traffic.empty() && args.jobs > 0) {
    std::cerr << "flames_batch: no convergent scenarios sampled\n";
    return 1;
  }

  if (args.lint) {
    lint::LintOptions lopts;
    lopts.warningsAsErrors = args.werror;
    const lint::LintReport report = lint::lintNetlist(*net, lopts);
    std::cout << lint::renderLintReport(report);
    if (!report.ok() || (args.werror && report.warnings() > 0)) {
      std::cerr << "flames_batch: lint failed, submitting nothing\n";
      return 2;
    }
  }

  if (args.analyze) {
    // The same semantic analysis the service runs once per unit type:
    // printed up front so an operator sees the envelopes, the derived entry
    // cap and any A1-A3 findings before committing the bench to the stream.
    diagnosis::FlamesOptions fopts;
    const constraints::BuiltModel built =
        constraints::buildDiagnosticModel(*net, fopts.model);
    const analyze::AnalysisReport report = analyze::analyzeModel(
        built, analyze::analysisOptionsFor(fopts.propagation));
    std::cout << analyze::renderAnalysisReport(report);
    if (!report.ok() ||
        (args.werror && report.findings.warnings() > 0)) {
      std::cerr << "flames_batch: analysis failed, submitting nothing\n";
      return 2;
    }
  }

  service::ServiceOptions sopts;
  sopts.workers = args.workers;
  if (!args.kbDir.empty()) {
    sopts.kb.dir = args.kbDir;
    sopts.kb.origin = args.kbOrigin;
    sopts.kb.snapshotEveryEvents = 64;  // periodic compaction cadence
  }
  service::DiagnosisService svc(sopts);

  for (const std::string& peer : args.kbMerge) {
    try {
      kb::KbOptions po;
      po.dir = peer;
      po.origin = "batch-peer";  // read-only open; an existing store keeps
                                 // its durable identity anyway
      const kb::KbStore peerStore(po);
      svc.mergeExperienceState(peerStore.serialize());
      std::cout << "flames_batch: merged KB from " << peer << "\n";
    } catch (const std::exception& e) {
      std::cerr << "flames_batch: --kb-merge " << peer << ": " << e.what()
                << "\n";
      return 2;
    }
  }

  std::cout << "flames_batch: " << traffic.size() << " jobs, "
            << svc.workerCount() << " workers, ladder(" << args.sections
            << ")\n";

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<service::JobHandle> handles;
  handles.reserve(traffic.size());
  for (const auto& item : traffic) {
    service::DiagnosisRequest req;
    req.netlist = net;
    req.options.lint.warningsAsErrors = args.werror;
    if (!args.explain.empty()) req.options.recordProvenance = true;
    for (const auto& r : item.readings) {
      req.measurements.push_back(service::crispMeasurement(r.node, r.volts));
    }
    if (args.deadlineMs > 0) {
      req.deadline = std::chrono::milliseconds(args.deadlineMs);
    }
    handles.push_back(svc.submit(req));
  }

  std::size_t done = 0, failed = 0, expired = 0, detected = 0, confirmed = 0;
  std::size_t entryCapUsed = 0;
  std::vector<double> latenciesMs;
  latenciesMs.reserve(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const service::JobResult& r = handles[i]->wait();
    switch (r.status) {
      case service::JobStatus::kDone:
        ++done;
        if (r.report.faultDetected()) ++detected;
        entryCapUsed = r.entryCapUsed;
        // Close the learning loop: the generator knows which fault it
        // injected, so the detected diagnosis can be confirmed into the
        // (durable) experience base like a technician would at the bench.
        if (args.kbConfirm && r.report.faultDetected() &&
            traffic[i].scenario.faults.size() == 1) {
          const circuit::Fault& f = traffic[i].scenario.faults.front();
          svc.confirm(r.report, f.component,
                      std::string(circuit::faultKindName(f.kind)));
          ++confirmed;
        }
        break;
      case service::JobStatus::kDeadlineExceeded:
        ++expired;
        break;
      default:
        ++failed;
        std::cerr << "  job " << i << " ("
                  << traffic[i].scenario.description
                  << "): " << service::jobStatusName(r.status) << " "
                  << r.error << "\n";
        break;
    }
    latenciesMs.push_back(
        static_cast<double>(r.queueNanos + r.runNanos) / 1e6);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wallSec =
      std::chrono::duration<double>(t1 - t0).count();

  std::sort(latenciesMs.begin(), latenciesMs.end());
  const auto stats = svc.stats();

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "  done " << done << ", failed " << failed << ", expired "
            << expired << " (fault detected in " << detected << ")\n";
  std::cout << "  wall " << wallSec * 1e3 << " ms, throughput "
            << static_cast<double>(handles.size()) / wallSec << " jobs/s\n";
  std::cout << "  latency ms  p50 " << percentile(latenciesMs, 0.50)
            << "  p90 " << percentile(latenciesMs, 0.90) << "  p99 "
            << percentile(latenciesMs, 0.99) << "  max "
            << (latenciesMs.empty() ? 0.0 : latenciesMs.back()) << "\n";
  std::cout << "  model cache: " << stats.modelCache.hits << " hits, "
            << stats.modelCache.misses << " misses, "
            << stats.modelCache.evictions << " evictions (size "
            << stats.modelCache.size << ")\n";
  if (done > 0) {
    std::cout << "  entry cap: " << entryCapUsed
              << " (analysis-derived per unit type), cost rejections "
              << stats.costRejections << "\n";
  }
  if (args.kbConfirm) {
    std::cout << "  kb: confirmed " << confirmed << " diagnoses ("
              << stats.experienceRules << " rule(s) in the experience base)\n";
  }
  if (args.kbStats) {
    const kb::KbStats& k = stats.kb;
    std::cout << "  kb stats: rules=" << k.rules << " live=" << k.liveRules
              << " tombstones=" << k.tombstoneSlots << " origins=" << k.origins
              << " localTick=" << k.localTick << " walEvents=" << k.walEvents
              << " walReplayed=" << k.walReplayed
              << " recoveredTail=" << (k.walRecoveredTail ? "yes" : "no")
              << " compactions=" << k.compactions
              << " evictions=" << k.evictions << " merges=" << k.merges
              << "\n";
  }

  if (!args.explain.empty()) {
    // Explain from the first completed job that detected a fault (falling
    // back to any completed job): the stream shares one unit type, so one
    // job's derivation chain is representative.
    const service::JobResult* pick = nullptr;
    for (const auto& h : handles) {
      const service::JobResult& r = h->wait();
      if (r.status != service::JobStatus::kDone || !r.report.provenance) {
        continue;
      }
      if (pick == nullptr) pick = &r;
      if (r.report.faultDetected()) {
        pick = &r;
        break;
      }
    }
    if (pick == nullptr) {
      std::cout << "\nno completed job carries provenance to explain\n";
    } else {
      try {
        diagnosis::FlamesOptions fopts;
        const constraints::BuiltModel built =
            constraints::buildDiagnosticModel(*net, fopts.model);
        std::cout << "\njob " << pick->jobId << ":\n"
                  << prov::renderExplanation(built, pick->report,
                                             args.explain);
      } catch (const std::exception& e) {
        std::cerr << "flames_batch: explain failed: " << e.what() << "\n";
        return 2;
      }
    }
  }

  if (args.obs) {
    std::cout << "\n";
    for (const auto* c : obs::Registry::global().counters()) {
      if (c->value() != 0 && c->name().rfind("service.", 0) == 0) {
        std::cout << "  " << c->name() << " = " << c->value() << "\n";
      }
    }
  }
  return failed == 0 ? 0 : 1;
}
